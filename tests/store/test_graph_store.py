"""GraphStore: exact materialization, lazy views, compaction, checksums.

The acceptance contract for the storage tier: store-backed replay is
*exact* — ``materialize(t)`` equals the in-memory DTDG snapshot for
every t of a 20-timestep AML-Sim stream — and every corruption mode is
caught by a checksum instead of silently reconstructing garbage.
"""

import os

import numpy as np
import pytest

from repro.errors import StoreCorruption, StoreError
from repro.graph import (AMLSimConfig, GraphSnapshot, diff_snapshots,
                         evolving_dtdg, generate_amlsim)
from repro.serve.ingest import EdgeEvent, events_between
from repro.store import GraphStore, StoreView, list_bases
from repro.store.compact import base_dir


@pytest.fixture(scope="module")
def aml20():
    """The acceptance stream: 20 AML-Sim timesteps."""
    config = AMLSimConfig(num_accounts=160, num_timesteps=20,
                          background_per_step=260,
                          partner_persistence=0.85, seed=11)
    return generate_amlsim(config).dtdg


def small_dtdg(seed=0, n=30, t=8):
    d = evolving_dtdg(n, t, 60, churn=0.25, seed=seed, name="small")
    return d


class TestMaterializeExactness:
    def test_aml20_every_step_exact(self, aml20, tmp_path):
        """Acceptance: materialize(t) == dtdg[t] for every t."""
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=6)
        assert store.num_timesteps == 20
        for t in range(20):
            assert store.materialize(t, cached=False) == aml20[t], t

    def test_exact_after_reopen(self, aml20, tmp_path):
        GraphStore.from_dtdg(str(tmp_path / "s"), aml20, base_interval=6)
        reopened = GraphStore.open(str(tmp_path / "s"))
        for t in (0, 7, 13, 19):
            assert reopened.materialize(t, cached=False) == aml20[t]
        assert reopened.tip == aml20[19]

    def test_weighted_values_roundtrip(self, tmp_path):
        """Changed edge values (not just topology) must replay exactly."""
        n = 12
        e = np.array([[0, 1], [1, 2], [2, 3]])
        snaps = [GraphSnapshot(n, e, np.array([1.0, 2.0, 3.0])),
                 GraphSnapshot(n, e, np.array([1.0, 9.5, 3.0])),
                 GraphSnapshot(n, e[:2], np.array([4.0, 9.5]))]
        store = GraphStore.create(str(tmp_path / "s"), n)
        for s in snaps:
            store.append_snapshot(s)
        for t, s in enumerate(snaps):
            assert store.materialize(t, cached=False) == s

    def test_empty_snapshots_roundtrip(self, tmp_path):
        n = 6
        empty = GraphSnapshot(n, np.empty((0, 2), dtype=np.int64))
        full = GraphSnapshot(n, np.array([[0, 1], [2, 3]]))
        store = GraphStore.create(str(tmp_path / "s"), n)
        for s in (empty, full, empty, empty):
            store.append_snapshot(s)
        for t, s in enumerate((empty, full, empty, empty)):
            assert store.materialize(t, cached=False) == s

    def test_events_then_seal_matches_ingestor(self, aml20, tmp_path):
        """The serving write path (event batches + seal) reconstructs
        the same snapshots as bulk diff appends."""
        store = GraphStore.create(str(tmp_path / "s"), aml20.num_vertices,
                                  base_interval=None)
        store.append_snapshot(aml20[0])
        for t in range(1, 6):
            events = events_between(aml20[t - 1], aml20[t])
            half = len(events) // 2
            store.append_events(events[:half])
            store.append_events(events[half:])
            store.seal_step()
        for t in range(6):
            assert store.materialize(t, cached=False) == aml20[t]

    def test_append_diff_validates_against_tip(self, tmp_path):
        d = small_dtdg()
        store = GraphStore.create(str(tmp_path / "s"), d.num_vertices)
        store.append_snapshot(d[0])
        wrong_base = diff_snapshots(d[3], d[4])
        with pytest.raises(StoreError):
            store.append_diff(wrong_base)

    def test_replay_to_bypasses_live_tip(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=6)
        before = store.records_replayed
        assert store.replay_to(19) == aml20[19]
        assert store.records_replayed > before  # really decoded


class TestCompaction:
    def test_bases_written_on_interval(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=5)
        steps = [s for s, _ in list_bases(store.path)]
        assert steps == [0, 5, 10, 15]

    def test_bases_bound_replay_depth(self, aml20, tmp_path):
        based = GraphStore.from_dtdg(str(tmp_path / "b"), aml20,
                                     base_interval=5)
        cold = GraphStore.from_dtdg(str(tmp_path / "c"), aml20,
                                    base_interval=None)
        b0 = based.records_replayed
        based.replay_to(19)
        c0 = cold.records_replayed
        cold.replay_to(19)
        assert based.records_replayed - b0 == 4   # from base 15
        assert cold.records_replayed - c0 == 20   # whole log

    def test_corrupt_base_falls_back_to_older(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=5)
        newest = list_bases(store.path)[-1][1]
        with open(newest, "r+b") as fh:
            fh.seek(40)
            fh.write(b"\xff" * 16)
        assert store.replay_to(19) == aml20[19]

    def test_manual_compact(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=None)
        store.compactor.compact(13)
        assert [s for s, _ in list_bases(store.path)] == [13]
        before = store.records_replayed
        store.replay_to(16)
        assert store.records_replayed - before == 3


class TestChecksums:
    def test_verify_whole_log(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=None)
        assert store.verify() == store.wal.num_records

    def test_bitflip_in_diff_payload_detected(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=None)
        record = store.wal.read(3)
        with open(store.wal.path, "r+b") as fh:
            fh.seek(record.offset + 60)
            fh.write(b"\xff\xff")
        # valid acknowledged history follows the damaged frame, so this
        # is interior corruption: reopening must refuse loudly instead
        # of silently truncating replay at the damage point
        with pytest.raises(StoreCorruption):
            GraphStore.open(str(tmp_path / "s"))

    def test_materialize_surfaces_corruption(self, aml20, tmp_path):
        """Damage inflicted *after* the store is open (the index still
        trusts the frame) must surface as StoreCorruption the moment
        replay walks over it, not as a silently wrong snapshot."""
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=None)
        record = store.wal.read(3)
        with open(store.wal.path, "r+b") as fh:
            fh.seek(record.offset + 60)
            fh.write(b"\xff\xff")
        with pytest.raises(StoreCorruption):
            store.replay_to(aml20.num_timesteps - 1)
        with pytest.raises(StoreCorruption):
            store.materialize(aml20.num_timesteps - 2, cached=False)

    def test_store_requires_header(self, tmp_path):
        path = tmp_path / "s"
        path.mkdir()
        (path / "wal.log").write_bytes(b"")
        with pytest.raises(StoreError):
            GraphStore.open(str(path))

    def test_create_refuses_existing(self, aml20, tmp_path):
        GraphStore.from_dtdg(str(tmp_path / "s"), aml20)
        with pytest.raises(StoreError):
            GraphStore.create(str(tmp_path / "s"), aml20.num_vertices)


class TestStoreView:
    def test_window_is_lazy_dtdg(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=6)
        view = store.window(3, 15)
        assert isinstance(view, StoreView)
        assert view.num_timesteps == 12
        assert view.num_vertices == aml20.num_vertices
        assert view[0] == aml20[3]
        assert view[-1] == aml20[14]
        assert len(list(view)) == 12
        for got, want in zip(view, aml20.snapshots[3:15]):
            assert got == want

    def test_view_slice_time(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20)
        inner = store.window(2, 18).slice_time(1, 5)
        assert inner.num_timesteps == 4
        assert inner[0] == aml20[3]

    def test_view_features_from_store(self, tmp_path):
        d = small_dtdg()
        d.set_features([np.full((d.num_vertices, 2), float(t))
                        for t in range(d.num_timesteps)])
        store = GraphStore.from_dtdg(str(tmp_path / "s"), d)
        view = store.window(2, 6)
        assert view.feature_dim == 2
        np.testing.assert_array_equal(view.features[0],
                                      d.features[2])

    def test_view_features_none_when_missing(self, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), small_dtdg())
        assert store.window().features is None

    def test_set_features_overrides(self, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), small_dtdg())
        view = store.window(0, 4)
        frames = [np.ones((view.num_vertices, 3)) * t for t in range(4)]
        view.set_features(frames)
        assert view.feature_dim == 3
        np.testing.assert_array_equal(view.features[3], frames[3])

    def test_bad_window_rejected(self, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), small_dtdg())
        with pytest.raises(StoreError):
            store.window(5, 3)
        with pytest.raises(StoreError):
            store.window(0, 99)

    def test_sequential_iteration_chains_hints(self, aml20, tmp_path):
        """Iterating a view costs ~one delta per step, not a replay
        from the nearest base per step."""
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20,
                                     base_interval=None)
        store._mat_cache.clear()
        before = store.records_replayed
        list(store.window(0, 20))
        assert store.records_replayed - before <= 21

    def test_stats_match_in_memory(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20)
        got = store.window().stats()
        want = aml20.stats()
        assert got.total_nnz == want.total_nnz
        assert got.mean_overlap == pytest.approx(want.mean_overlap)


class TestFeaturesAndMisc:
    def test_feature_shape_validated(self, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), small_dtdg())
        with pytest.raises(StoreError):
            store.append_features(np.zeros((3, 2)))

    def test_features_require_sealed_step(self, tmp_path):
        store = GraphStore.create(str(tmp_path / "s"), 10)
        with pytest.raises(StoreError):
            store.append_features(np.zeros((10, 2)))

    def test_iter_snapshots(self, aml20, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), aml20)
        got = list(store.iter_snapshots(4, 9))
        assert all(a == b for a, b in zip(got, aml20.snapshots[4:9]))

    def test_engine_state_pruning(self, tmp_path):
        store = GraphStore.from_dtdg(str(tmp_path / "s"), small_dtdg())
        for i in range(4):
            store.seal_step()
            store.save_engine_state({"type": "engine", "i": i},
                                    {"x": np.arange(3)}, keep=2)
        states = store._engine_states()
        assert len(states) == 2
        meta, arrays = store.latest_engine_state()
        assert meta["i"] == 3
        np.testing.assert_array_equal(arrays["x"], np.arange(3))
