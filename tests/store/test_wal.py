"""Delta-log framing: append/scan round trips and crash tolerance."""

import os

import pytest

from repro.errors import StoreCorruption, StoreError
from repro.store import DeltaLog
from repro.store.wal import (KIND_DIFF, KIND_EVENTS, KIND_META, KIND_SEAL,
                             MAGIC, _HEADER)


@pytest.fixture
def log(tmp_path):
    return DeltaLog(str(tmp_path / "wal.log"))


class TestFraming:
    def test_append_scan_roundtrip(self, log):
        payloads = [b"alpha", b"", b"x" * 4096]
        kinds = [KIND_META, KIND_DIFF, KIND_EVENTS]
        for kind, payload in zip(kinds, payloads):
            log.append(kind, payload)
        records = list(log.scan())
        assert [r.kind for r in records] == kinds
        assert [r.payload for r in records] == payloads
        assert [r.index for r in records] == [0, 1, 2]

    def test_random_access_read(self, log):
        for i in range(5):
            log.append(KIND_SEAL, bytes([i]) * (i + 1))
        assert log.read(3).payload == b"\x03" * 4
        assert log.read(0).payload == b"\x00"

    def test_read_out_of_range(self, log):
        log.append(KIND_META, b"m")
        with pytest.raises(StoreError):
            log.read(1)

    def test_nbytes_counts_frames(self, log):
        log.append(KIND_META, b"abc")
        assert log.nbytes == _HEADER.size + 3
        assert log.nbytes == os.path.getsize(log.path)

    def test_unknown_kind_rejected(self, log):
        with pytest.raises(StoreError):
            log.append(99, b"payload")

    def test_reopen_preserves_records(self, tmp_path):
        path = str(tmp_path / "w.log")
        first = DeltaLog(path)
        first.append(KIND_META, b"m")
        first.append(KIND_DIFF, b"d1")
        second = DeltaLog(path)
        assert second.num_records == 2
        assert second.read(1).payload == b"d1"

    def test_scan_from_streams_a_range(self, log):
        for i in range(6):
            log.append(KIND_SEAL, bytes([i]))
        records = list(log.scan_from(2, 5))
        assert [r.index for r in records] == [2, 3, 4]
        assert [r.payload for r in records] == [b"\x02", b"\x03", b"\x04"]
        # open-ended scan runs to the tail
        assert [r.index for r in log.scan_from(4)] == [4, 5]
        # empty and past-the-end ranges are fine
        assert list(log.scan_from(5, 5)) == []
        assert list(log.scan_from(6)) == []

    def test_scan_from_detects_corruption(self, log):
        log.append(KIND_META, b"m")
        log.append(KIND_DIFF, b"payload")
        with open(log.path, "r+b") as fh:
            fh.seek(_HEADER.size)  # corrupt record 0's payload
            fh.write(b"Z")
        with pytest.raises(StoreError):
            list(log.scan_from(0))


class TestCrashTolerance:
    def _torn_tail(self, path, keep_valid=2, garbage=b"torn"):
        log = DeltaLog(path)
        log.append(KIND_META, b"m")
        log.append(KIND_DIFF, b"d1")
        with open(path, "ab") as fh:
            fh.write(garbage)
        return log

    def test_torn_tail_ignored_on_scan(self, tmp_path):
        path = str(tmp_path / "w.log")
        self._torn_tail(path)
        reopened = DeltaLog(path)
        assert reopened.num_records == 2
        assert [r.kind for r in reopened.scan()] == [KIND_META, KIND_DIFF]

    def test_append_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "w.log")
        self._torn_tail(path)
        reopened = DeltaLog(path)
        reopened.append(KIND_SEAL, b"s")
        fresh = DeltaLog(path)
        assert fresh.num_records == 3
        assert fresh.read(2).payload == b"s"

    def test_torn_header_with_valid_magic(self, tmp_path):
        """A crash can write the header but not the payload."""
        path = str(tmp_path / "w.log")
        log = DeltaLog(path)
        log.append(KIND_META, b"m")
        with open(path, "ab") as fh:
            fh.write(_HEADER.pack(MAGIC, KIND_DIFF, 1000, 0) + b"short")
        assert DeltaLog(path).num_records == 1

    def test_corrupt_payload_crc_stops_scan(self, tmp_path):
        path = str(tmp_path / "w.log")
        log = DeltaLog(path)
        log.append(KIND_META, b"m")
        offset = log.nbytes
        log.append(KIND_DIFF, b"payload-bytes")
        with open(path, "r+b") as fh:
            fh.seek(offset + _HEADER.size)  # first payload byte
            fh.write(b"X")
        assert DeltaLog(path).num_records == 1

    def test_detects_corruption_under_valid_index(self, tmp_path):
        """read() re-checks the CRC even when the scan-time index still
        claims the record is there."""
        path = str(tmp_path / "w.log")
        log = DeltaLog(path)
        log.append(KIND_META, b"m")
        log.append(KIND_DIFF, b"payload")
        with open(path, "r+b") as fh:
            fh.seek(_HEADER.size)  # corrupt record 0's payload
            fh.write(b"Z")
        with pytest.raises(StoreError):
            log.read(0)


class TestInteriorCorruption:
    """A bad frame *followed by valid log* is damage to acknowledged
    history, never a torn tail — reopening must refuse loudly instead
    of silently truncating replay at the damage point."""

    def _three_records(self, path):
        log = DeltaLog(path)
        log.append(KIND_META, b"m")
        off1 = log.nbytes
        log.append(KIND_DIFF, b"d" * 64)
        off2 = log.nbytes
        log.append(KIND_SEAL, b"s" * 32)
        return log, off1, off2

    def test_midlog_payload_bitflip_raises(self, tmp_path):
        path = str(tmp_path / "w.log")
        _, off1, _ = self._three_records(path)
        with open(path, "r+b") as fh:
            fh.seek(off1 + _HEADER.size + 5)
            fh.write(b"\xff")
        with pytest.raises(StoreCorruption):
            DeltaLog(path)

    def test_midlog_header_damage_raises(self, tmp_path):
        path = str(tmp_path / "w.log")
        _, off1, _ = self._three_records(path)
        with open(path, "r+b") as fh:
            fh.seek(off1 + 4)  # the kind byte
            fh.write(b"\x63")
        with pytest.raises(StoreCorruption):
            DeltaLog(path)

    def test_midlog_truncation_raises(self, tmp_path):
        """Bytes punched out of the middle shift the surviving frames
        left; the probe still finds them and refuses the log."""
        path = str(tmp_path / "w.log")
        _, off1, off2 = self._three_records(path)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:off1 + 8] + data[off2:])
        with pytest.raises(StoreCorruption):
            DeltaLog(path)

    def test_corruption_is_typed(self, tmp_path):
        """StoreCorruption specializes StoreError, so existing broad
        handlers still catch it while new code can distinguish."""
        assert issubclass(StoreCorruption, StoreError)
        path = str(tmp_path / "w.log")
        _, off1, _ = self._three_records(path)
        with open(path, "r+b") as fh:
            fh.seek(off1 + _HEADER.size)
            fh.write(b"\x00")
        with pytest.raises(StoreError):
            DeltaLog(path)

    def test_tail_corruption_still_tolerated(self, tmp_path):
        """Damage to the *last* frame with nothing valid after it is
        indistinguishable from a torn append and stays tolerated."""
        path = str(tmp_path / "w.log")
        _, _, off2 = self._three_records(path)
        with open(path, "r+b") as fh:
            fh.seek(off2 + _HEADER.size)
            fh.write(b"\xff")
        assert DeltaLog(path).num_records == 2
