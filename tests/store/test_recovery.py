"""Crash recovery acceptance: recovered state == pre-crash state.

A server with an attached store is driven through a 20-timestep AML-Sim
event stream (micro-batched events, timestep boundaries, queries), then
"crashes" mid-stream: the process state is discarded and a fresh server
is rebuilt purely from (model checkpoint, newest engine capture, WAL
tail replay).  The recovered embeddings must equal the live pre-crash
server's to atol 1e-6 — for every supported model, on both the
single-worker and the sharded tier, including a crash point that lands
*mid-step* with unflushed dirty rows and a capture several boundaries
old.
"""

import os

import numpy as np
import pytest

from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import MODEL_NAMES, build_model
from repro.nn.linear import Linear
from repro.serve import ModelServer, ShardedServer, events_between
from repro.store import GraphStore
from repro.train.checkpoint import save_model_checkpoint


@pytest.fixture(scope="module")
def stream20():
    config = AMLSimConfig(num_accounts=150, num_timesteps=20,
                          background_per_step=240,
                          partner_persistence=0.85, seed=11)
    return generate_amlsim(config).dtdg


def _drive(server, dtdg, t_range, batches=3):
    """Advance + micro-batched event ingestion over ``t_range``."""
    for t in t_range:
        server.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        chunk = max(1, len(events) // batches)
        for i in range(0, len(events), chunk):
            server.ingest_events(events[i:i + chunk])


def _full_embeddings(server):
    server.cache.invalidate_all()
    server.engine.refresh()
    return server.engine.embeddings


def _model_and_head(name, seed=0):
    model = build_model(name, in_features=2, seed=seed)
    return model, Linear(model.embed_dim, 2, np.random.default_rng(7))


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_model_server_recovers_exactly(stream20, name, tmp_path):
    """Acceptance: post-crash recover() == pre-crash resident state."""
    dtdg = stream20
    model, fraud = _model_and_head(name)
    live = ModelServer(model, dtdg[0], fraud_head=fraud)
    store = GraphStore.create(str(tmp_path / "s"), dtdg.num_vertices,
                              base_interval=4)
    live.attach_store(store, state_interval=3)
    _drive(live, dtdg, range(1, 14))  # crash lands mid-step, unflushed

    model2, fraud2 = _model_and_head(name)
    recovered = ModelServer.recover(GraphStore.open(str(tmp_path / "s")),
                                    model=model2, fraud_head=fraud2)
    assert recovered.ingestor.resident == live.ingestor.resident
    assert recovered.engine.steps == live.engine.steps
    np.testing.assert_allclose(_full_embeddings(recovered),
                               _full_embeddings(live), atol=1e-6)

    # the recovered server keeps serving: continue both through the
    # rest of the stream (the recovered one re-attaches its own store)
    live.store = None  # two writers on one WAL is not a supported mode
    _drive(live, dtdg, range(14, 20))
    _drive(recovered, dtdg, range(14, 20))
    np.testing.assert_allclose(_full_embeddings(recovered),
                               _full_embeddings(live), atol=1e-6)


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_sharded_server_recovers_exactly(stream20, name, tmp_path):
    """Acceptance: the sharded tier (shards, replicas, halos) recovers
    to gathered embeddings equal to the pre-crash run."""
    dtdg = stream20
    model, fraud = _model_and_head(name)
    live = ShardedServer(model, dtdg[0], num_shards=3, replicas=2,
                         fraud_head=fraud)
    store = GraphStore.create(str(tmp_path / "s"), dtdg.num_vertices,
                              base_interval=4)
    live.attach_store(store, state_interval=2)
    _drive(live, dtdg, range(1, 11), batches=2)

    model2, fraud2 = _model_and_head(name)
    recovered = ShardedServer.recover(
        GraphStore.open(str(tmp_path / "s")), model=model2,
        fraud_head=fraud2)
    assert recovered.num_shards == 3
    assert recovered.replicas == 2
    np.testing.assert_array_equal(recovered.plan.owner, live.plan.owner)
    np.testing.assert_allclose(recovered.gathered_embeddings(),
                               live.gathered_embeddings(), atol=1e-6)


def _drive_with_rebases(server, dtdg, t_range):
    """Boundary-rebase serving (the durable-serving example's drive):
    each timestep lands in the WAL as a GD-delta record, plus one
    intra-step event batch."""
    for t in t_range:
        server.advance_time(dtdg[t])
        server.ingest_events(
            events_between(dtdg[t], dtdg[min(t + 1, len(dtdg) - 1)])[:20])


def test_sharded_recovery_shares_incremental_maintainer(stream20,
                                                        tmp_path):
    """Satellite regression: a recovered sharded tier re-injects ONE
    router-owned LaplacianMaintainer into every worker/replica engine,
    and the WAL tail (snapshot-sealed boundaries included) replays
    through the O(delta) incremental path — no fallbacks, no per-
    boundary full rebuilds."""
    dtdg = stream20
    model, fraud = _model_and_head("cdgcn")
    live = ShardedServer(model, dtdg[0], num_shards=3, replicas=2,
                         fraud_head=fraud)
    store = GraphStore.create(str(tmp_path / "s"), dtdg.num_vertices,
                              base_interval=4)
    live.attach_store(store, state_interval=3)
    _drive_with_rebases(live, dtdg, range(1, 9))

    model2, fraud2 = _model_and_head("cdgcn")
    recovered = ShardedServer.recover(
        GraphStore.open(str(tmp_path / "s")), model=model2,
        fraud_head=fraud2)
    m = recovered.maintainer
    # one shared operator across the whole tier
    for rs in recovered.shards:
        for w in rs.workers:
            assert w.engine.maintainer is m
    # the tail replay (events AND rebase boundaries) stayed incremental:
    # the only full build is the boot-time construction
    assert m.incremental_updates > 0
    assert m.fallbacks == 0
    assert m.full_rebuilds == 1
    np.testing.assert_allclose(recovered.gathered_embeddings(),
                               live.gathered_embeddings(), atol=1e-6)

    # and serving after recovery keeps the incremental profile
    before = m.incremental_updates
    recovered.ingest_events(events_between(dtdg[8], dtdg[9]))
    assert m.incremental_updates > before
    assert m.fallbacks == 0


def test_model_server_recovery_replays_rebases_incrementally(stream20,
                                                             tmp_path):
    """Snapshot-sealed boundaries replay with their store-decoded GD
    delta: the recovered engine's maintainer advances incrementally
    instead of rebuilding at every replayed boundary."""
    dtdg = stream20
    model, fraud = _model_and_head("tmgcn")
    live = ModelServer(model, dtdg[0], fraud_head=fraud)
    store = GraphStore.create(str(tmp_path / "s"), dtdg.num_vertices)
    live.attach_store(store, state_interval=4)
    _drive_with_rebases(live, dtdg, range(1, 8))

    model2, fraud2 = _model_and_head("tmgcn")
    recovered = ModelServer.recover(GraphStore.open(str(tmp_path / "s")),
                                    model=model2, fraud_head=fraud2)
    m = recovered.engine.maintainer
    assert m.incremental_updates > 0
    assert m.fallbacks == 0
    assert m.full_rebuilds == 1
    np.testing.assert_allclose(_full_embeddings(recovered),
                               _full_embeddings(live), atol=1e-6)


def test_recovery_from_model_checkpoint_file(stream20, tmp_path):
    """The documented production path: (checkpoint.npz, store) → server."""
    dtdg = stream20
    model, fraud = _model_and_head("cdgcn")
    ckpt_path = save_model_checkpoint(str(tmp_path / "model.npz"), model,
                                      "cdgcn", fraud_head=fraud)
    live = ModelServer(model, dtdg[0], fraud_head=fraud)
    store = GraphStore.create(str(tmp_path / "s"), dtdg.num_vertices)
    live.attach_store(store)
    _drive(live, dtdg, range(1, 6))

    recovered = ModelServer.recover(GraphStore.open(str(tmp_path / "s")),
                                    checkpoint=ckpt_path)
    assert recovered.fraud_head is not None
    np.testing.assert_allclose(_full_embeddings(recovered),
                               _full_embeddings(live), atol=1e-6)
    # the rebuilt fraud head scores like the original
    a = live.submit_fraud(5)
    b = recovered.submit_fraud(5)
    live.drain()
    recovered.drain()
    assert abs(a.result - b.result) < 1e-9


def test_recovery_replays_queries_identically(stream20, tmp_path):
    """Scores served after recovery match the uncrashed server's."""
    dtdg = stream20
    model, fraud = _model_and_head("tmgcn")
    live = ModelServer(model, dtdg[0], fraud_head=fraud)
    store = GraphStore.create(str(tmp_path / "s"), dtdg.num_vertices)
    live.attach_store(store, state_interval=4)
    _drive(live, dtdg, range(1, 9))

    model2, fraud2 = _model_and_head("tmgcn")
    recovered = ModelServer.recover(GraphStore.open(str(tmp_path / "s")),
                                    model=model2, fraud_head=fraud2)
    n = dtdg.num_vertices
    for u, v in [(1, 7), (n - 1, 3), (n // 2, n // 3)]:
        a = live.submit_link(u, v)
        b = recovered.submit_link(u, v)
        live.drain()
        recovered.drain()
        assert abs(a.result - b.result) < 1e-9


def test_recovery_preserves_bounded_cache_state(stream20, tmp_path):
    """With cache_max_rows, the capture carries the LRU state
    (evicted set, recency clocks) so the recovered server evicts and
    reloads exactly like the crashed one would have."""
    dtdg = stream20
    n = dtdg.num_vertices
    model, fraud = _model_and_head("cdgcn")
    live = ModelServer(model, dtdg[0], fraud_head=fraud,
                       cache_max_rows=40)
    store = GraphStore.create(str(tmp_path / "s"), n)
    live.attach_store(store, state_interval=1)
    for t in range(1, 6):
        live.advance_time()
        live.ingest_events(events_between(dtdg[t - 1], dtdg[t]))
        for v in (t, n - t, n // 2):
            live.submit_fraud(v)
        live.drain()
    # crash right after a boundary + one event batch (queries since the
    # last capture are not durable ops, so none happen here)
    live.advance_time()
    live.ingest_events(events_between(dtdg[5], dtdg[6]))
    assert live.cache.num_evicted > 0

    model2, fraud2 = _model_and_head("cdgcn")
    rec = ModelServer.recover(GraphStore.open(str(tmp_path / "s")),
                              model=model2, fraud_head=fraud2,
                              cache_max_rows=40)
    np.testing.assert_array_equal(rec.cache.evicted, live.cache.evicted)
    np.testing.assert_array_equal(rec.cache._last_used,
                                  live.cache._last_used)
    assert rec.cache._use_clock == live.cache._use_clock
    assert rec.cache.num_evicted == live.cache.num_evicted


def test_wal_logged_before_acknowledgment(stream20, tmp_path):
    """Every acknowledged ingest is on disk before the call returns:
    a crash immediately after ingest_events loses nothing."""
    dtdg = stream20
    model, fraud = _model_and_head("cdgcn")
    live = ModelServer(model, dtdg[0], fraud_head=fraud)
    store = GraphStore.create(str(tmp_path / "s"), dtdg.num_vertices)
    live.attach_store(store)
    events = events_between(dtdg[0], dtdg[1])
    records_before = store.wal.num_records
    live.ingest_events(events)
    assert store.wal.num_records == records_before + 1
    # a store reopened from disk already holds the ingested state
    assert GraphStore.open(str(tmp_path / "s")).tip == \
        live.ingestor.resident


def test_recover_without_capture_is_an_error(stream20, tmp_path):
    from repro.errors import StoreError
    store = GraphStore.from_dtdg(str(tmp_path / "s"),
                                 stream20.slice_time(0, 3))
    model, _ = _model_and_head("cdgcn")
    with pytest.raises(StoreError):
        ModelServer.recover(store, model=model)


def test_attach_rejects_mismatched_store(stream20, tmp_path):
    from repro.errors import ConfigError
    dtdg = stream20
    model, _ = _model_and_head("cdgcn")
    server = ModelServer(model, dtdg[0])
    # store sealed at a different snapshot than the resident
    store = GraphStore.create(str(tmp_path / "s"), dtdg.num_vertices)
    store.append_snapshot(dtdg[5])
    with pytest.raises(ConfigError):
        server.attach_store(store)
