"""Trainers consuming GraphStore windows (out-of-core feeding).

Training from a lazy :class:`~repro.store.store.StoreView` must be
*numerically identical* to training from the equivalent in-memory DTDG
— the store is a representation change, not an approximation — for both
the single-device trainer (baseline and checkpointed paths) and the
distributed trainer.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.graph import evolving_dtdg
from repro.models import build_model
from repro.store import GraphStore, StoreView
from repro.train import (DistConfig, DistributedTrainer,
                         LinkPredictionTask, SingleDeviceTrainer,
                         TrainerConfig)


def make_dtdg(n=16, t=7, seed=0):
    return evolving_dtdg(n, t, 40, churn=0.25, seed=seed)


@pytest.fixture
def stored(tmp_path):
    d = make_dtdg()
    store = GraphStore.from_dtdg(str(tmp_path / "s"), d, base_interval=3)
    return d, store


def _losses(trainer, epochs=2):
    return [r.loss for r in trainer.fit(epochs)]


@pytest.mark.parametrize("num_blocks", [1, 3])
def test_single_device_training_from_store_matches(stored, num_blocks):
    d, store = stored
    config = TrainerConfig(num_blocks=num_blocks)

    model_a = build_model("cdgcn", in_features=2, hidden=6, embed_dim=6,
                          seed=0)
    task_a = LinkPredictionTask(d, embed_dim=6, theta=0.5, seed=0)
    ref = SingleDeviceTrainer(model_a, d, task_a, config)

    model_b = build_model("cdgcn", in_features=2, hidden=6, embed_dim=6,
                          seed=0)
    got = SingleDeviceTrainer.from_store(
        model_b, store,
        lambda view: LinkPredictionTask(view, embed_dim=6, theta=0.5,
                                        seed=0),
        config)
    assert isinstance(got.dtdg, StoreView)

    np.testing.assert_allclose(_losses(got), _losses(ref), rtol=1e-10)


def test_from_store_window_slices_timeline(stored):
    d, store = stored
    model = build_model("cdgcn", in_features=2, hidden=6, embed_dim=6,
                        seed=0)
    trainer = SingleDeviceTrainer.from_store(
        model, store,
        lambda view: LinkPredictionTask(view, embed_dim=6, theta=0.5,
                                        seed=0),
        TrainerConfig(), start=2, stop=7)
    assert trainer.dtdg.num_timesteps == 5
    assert trainer.dtdg[0] == d[2]
    result = trainer.fit(1)[0]
    assert np.isfinite(result.loss)


def test_distributed_training_from_store_matches(stored):
    d, store = stored
    config = DistConfig(partitioning="snapshot", num_blocks=2)

    def boot(source, from_store):
        model = build_model("cdgcn", in_features=2, hidden=6,
                            embed_dim=6, seed=0)
        cluster = Cluster(ClusterSpec(num_nodes=1, gpus_per_node=2))
        if from_store:
            return DistributedTrainer.from_store(
                model, source,
                lambda view: LinkPredictionTask(view, embed_dim=6,
                                                theta=0.5, seed=0),
                cluster, config)
        task = LinkPredictionTask(source, embed_dim=6, theta=0.5, seed=0)
        return DistributedTrainer(model, source, task, cluster, config)

    ref = boot(d, from_store=False)
    got = boot(store, from_store=True)
    np.testing.assert_allclose(_losses(got), _losses(ref), rtol=1e-10)
