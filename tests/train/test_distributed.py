"""Tests for the distributed engines (paper §4, §6.3–§6.5).

The decisive property (paper §6.4): every distribution scheme must
*faithfully simulate the sequential algorithm* — identical losses and
gradients up to float accumulation — while charging the right time,
volume and memory per rank.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.errors import ConfigError, DeviceOOM
from repro.graph import evolving_dtdg
from repro.models import MODEL_NAMES, build_model
from repro.train import (DistConfig, DistributedTrainer, LinkPredictionTask,
                         SingleDeviceTrainer, TrainerConfig)
from repro.train.preprocess import degree_features


N, T = 18, 9


def make_dtdg(seed=0, n=N, t=T):
    d = evolving_dtdg(n, t, 45, churn=0.25, seed=seed)
    d.set_features(degree_features(d))
    return d


def sequential_reference(model_name, dtdg, epochs=1):
    """Per-epoch losses of the plain single-device run."""
    model = build_model(model_name, in_features=2, hidden=4, embed_dim=4,
                        seed=0)
    task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.4, seed=0)
    trainer = SingleDeviceTrainer(model, dtdg, task,
                                  TrainerConfig(learning_rate=0.02))
    return [r.loss for r in trainer.fit(epochs)]


def make_distributed(model_name, dtdg, num_ranks, **cfg_kwargs):
    model = build_model(model_name, in_features=2, hidden=4, embed_dim=4,
                        seed=0)
    task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.4, seed=0)
    cluster = Cluster.of_size(num_ranks)
    cfg = DistConfig(learning_rate=0.02, **cfg_kwargs)
    return DistributedTrainer(model, dtdg, task, cluster, cfg)


class TestSnapshotEngineFidelity:
    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_matches_sequential_losses(self, model_name):
        dtdg = make_dtdg()
        ref = sequential_reference(model_name, dtdg, epochs=3)
        trainer = make_distributed(model_name, dtdg, num_ranks=4,
                                   partitioning="snapshot")
        got = [r.loss for r in trainer.fit(3)]
        np.testing.assert_allclose(got, ref, rtol=1e-8)

    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_blockwise_matches_sequential(self, model_name):
        dtdg = make_dtdg(seed=1)
        ref = sequential_reference(model_name, dtdg, epochs=2)
        trainer = make_distributed(model_name, dtdg, num_ranks=2,
                                   partitioning="snapshot", num_blocks=2)
        got = [r.loss for r in trainer.fit(2)]
        np.testing.assert_allclose(got, ref, rtol=1e-8)

    def test_more_ranks_than_timesteps(self):
        dtdg = make_dtdg(seed=2, t=4)
        trainer = make_distributed("tmgcn", dtdg, num_ranks=6,
                                   partitioning="snapshot")
        result = trainer.train_epoch()
        assert np.isfinite(result.loss)


class TestSnapshotEngineCosts:
    def test_gcn_rnn_models_have_fixed_redistribution_volume(self):
        """§4.2: volume is O(T·N) regardless of P."""
        dtdg = make_dtdg(seed=3)
        volumes = {}
        for p in (2, 4, 8):
            trainer = make_distributed("tmgcn", dtdg, num_ranks=p,
                                       partitioning="snapshot")
            volumes[p] = trainer.train_epoch().comm_volume_units
        # excluding self-communication, volume approaches the fixed limit
        assert volumes[4] <= volumes[8] <= volumes[4] * 1.5
        assert volumes[2] <= volumes[4]

    def test_evolvegcn_is_communication_free(self):
        dtdg = make_dtdg(seed=4)
        trainer = make_distributed("egcn", dtdg, num_ranks=4,
                                   partitioning="snapshot")
        result = trainer.train_epoch()
        assert result.comm_volume_units == 0.0
        assert result.gradient_volume_units > 0.0

    def test_compute_time_scales_down_with_ranks(self):
        dtdg = make_dtdg(seed=5)
        t1 = make_distributed("tmgcn", dtdg, 1).train_epoch()
        t8 = make_distributed("tmgcn", dtdg, 8).train_epoch()
        assert t8.breakdown.compute < t1.breakdown.compute / 4

    def test_gd_reduces_transfer(self):
        dtdg = make_dtdg(seed=6)
        base = make_distributed("tmgcn", dtdg, 2,
                                use_graph_difference=False).train_epoch()
        gd = make_distributed("tmgcn", dtdg, 2,
                              use_graph_difference=True).train_epoch()
        assert gd.breakdown.transfer < base.breakdown.transfer
        assert gd.loss == pytest.approx(base.loss, rel=1e-9)

    def test_gd_benefit_shrinks_with_ranks(self):
        """§6.2: beneficiaries are (bsize − P)/bsize of the snapshots."""
        dtdg = make_dtdg(seed=7, t=9)
        r2 = make_distributed("tmgcn", dtdg, 2).train_epoch()
        r8 = make_distributed("tmgcn", dtdg, 8).train_epoch()
        assert r2.gd_savings_ratio > r8.gd_savings_ratio

    def test_memory_oom_on_small_device(self):
        dtdg = make_dtdg(seed=8)
        model = build_model("tmgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.4, seed=0)
        cluster = Cluster.of_size(1, gpu_memory_bytes=16_000)
        trainer = DistributedTrainer(model, dtdg, task, cluster,
                                     DistConfig(num_blocks=1))
        with pytest.raises(DeviceOOM):
            trainer.train_epoch()
        # checkpointing fits on the same device
        cluster2 = Cluster.of_size(1, gpu_memory_bytes=16_000)
        trainer2 = DistributedTrainer(
            build_model("tmgcn", in_features=2, hidden=4, embed_dim=4,
                        seed=0),
            dtdg, LinkPredictionTask(dtdg, embed_dim=4, theta=0.4, seed=0),
            cluster2, DistConfig(num_blocks=4))
        assert np.isfinite(trainer2.train_epoch().loss)


class TestVertexEngine:
    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_matches_sequential_losses(self, model_name):
        dtdg = make_dtdg(seed=9)
        ref = sequential_reference(model_name, dtdg, epochs=2)
        trainer = make_distributed(model_name, dtdg, num_ranks=3,
                                   partitioning="vertex",
                                   vertex_method="hypergraph")
        got = [r.loss for r in trainer.fit(2)]
        np.testing.assert_allclose(got, ref, rtol=1e-8)

    def test_random_method_also_faithful(self):
        dtdg = make_dtdg(seed=10)
        ref = sequential_reference("tmgcn", dtdg, epochs=1)
        trainer = make_distributed("tmgcn", dtdg, num_ranks=4,
                                   partitioning="vertex",
                                   vertex_method="random")
        assert trainer.train_epoch().loss == pytest.approx(ref[0],
                                                           rel=1e-8)

    def test_volume_grows_with_ranks(self):
        """§4.1: vertex-partitioning volume increases with P."""
        dtdg = make_dtdg(seed=11, n=40)
        volumes = {}
        for p in (2, 4, 8):
            trainer = make_distributed("tmgcn", dtdg, num_ranks=p,
                                       partitioning="vertex",
                                       vertex_method="random")
            volumes[p] = trainer.train_epoch().comm_volume_units
        assert volumes[2] < volumes[4] < volumes[8]

    def test_slower_than_snapshot_partitioning(self):
        """The paper's Table 2 outcome on a dense-ish graph."""
        dtdg = make_dtdg(seed=12, n=30)
        snap = make_distributed("tmgcn", dtdg, 4,
                                partitioning="snapshot").train_epoch()
        vert = make_distributed("tmgcn", dtdg, 4,
                                partitioning="vertex").train_epoch()
        assert vert.breakdown.total > snap.breakdown.total


class TestHybridEngine:
    def test_sec65_two_gpu_split_matches_sequential(self):
        dtdg = make_dtdg(seed=13)
        ref = sequential_reference("tmgcn", dtdg, epochs=2)
        trainer = make_distributed("tmgcn", dtdg, num_ranks=2,
                                   partitioning="hybrid", group_size=2)
        got = [r.loss for r in trainer.fit(2)]
        np.testing.assert_allclose(got, ref, rtol=1e-8)

    def test_allgather_volume_charged(self):
        dtdg = make_dtdg(seed=14)
        trainer = make_distributed("tmgcn", dtdg, num_ranks=2,
                                   partitioning="hybrid", group_size=2)
        result = trainer.train_epoch()
        assert result.comm_volume_units > 0

    def test_halves_per_rank_memory(self):
        dtdg = make_dtdg(seed=15)
        solo = make_distributed("tmgcn", dtdg, 1,
                                partitioning="hybrid",
                                group_size=1).train_epoch()
        split = make_distributed("tmgcn", dtdg, 2,
                                 partitioning="hybrid",
                                 group_size=2).train_epoch()
        assert split.peak_memory_bytes < solo.peak_memory_bytes

    def test_multi_group_gcn_rnn_rejected(self):
        dtdg = make_dtdg(seed=16)
        with pytest.raises(ConfigError):
            make_distributed("tmgcn", dtdg, num_ranks=4,
                             partitioning="hybrid", group_size=2)

    def test_multi_group_evolve_allowed(self):
        dtdg = make_dtdg(seed=17)
        trainer = make_distributed("egcn", dtdg, num_ranks=4,
                                   partitioning="hybrid", group_size=2)
        assert np.isfinite(trainer.train_epoch().loss)

    def test_accuracy_reported(self):
        dtdg = make_dtdg(seed=18)
        trainer = make_distributed("tmgcn", dtdg, num_ranks=2,
                                   partitioning="hybrid", group_size=2)
        results = trainer.fit(5)
        assert 0.0 <= results[-1].test_accuracy <= 1.0


class TestConfigValidation:
    def test_bad_partitioning(self):
        with pytest.raises(ConfigError):
            DistConfig(partitioning="columns")

    def test_bad_vertex_method(self):
        with pytest.raises(ConfigError):
            DistConfig(vertex_method="metis")

    def test_bad_blocks(self):
        with pytest.raises(ConfigError):
            DistConfig(num_blocks=0)

    def test_bad_group(self):
        with pytest.raises(ConfigError):
            DistConfig(group_size=0)
