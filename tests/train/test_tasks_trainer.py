"""Tests for tasks and the single-device trainer."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, Device
from repro.errors import ConfigError, DatasetError, DeviceOOM
from repro.graph import evolving_dtdg
from repro.models import build_model
from repro.tensor import Tensor
from repro.train import (LinkPredictionTask, NodeClassificationTask,
                         SingleDeviceTrainer, TrainerConfig)
from repro.train.preprocess import degree_features


def make_dtdg(n=16, t=7, seed=0):
    d = evolving_dtdg(n, t, 40, churn=0.25, seed=seed)
    d.set_features(degree_features(d))
    return d


class TestLinkPredictionTask:
    def test_construction(self):
        d = make_dtdg()
        task = LinkPredictionTask(d, embed_dim=4, theta=0.2, seed=0)
        assert task.num_train_timesteps == d.num_timesteps - 1
        assert len(task.samples) == task.num_train_timesteps

    def test_balanced_labels(self):
        task = LinkPredictionTask(make_dtdg(), embed_dim=4, theta=0.5,
                                  seed=0)
        for sample in task.samples:
            assert (sample.labels == 1).sum() == (sample.labels == 0).sum()

    def test_positive_pairs_are_edges(self):
        d = make_dtdg()
        task = LinkPredictionTask(d, embed_dim=4, theta=0.5, seed=0)
        for t, sample in enumerate(task.samples):
            edges = d[t].edge_set()
            pos = sample.pairs[sample.labels == 1]
            for u, v in pos:
                assert (u, v) in edges

    def test_theta_scales_sample_size(self):
        d = make_dtdg()
        small = LinkPredictionTask(d, embed_dim=4, theta=0.1, seed=0)
        large = LinkPredictionTask(d, embed_dim=4, theta=0.5, seed=0)
        assert len(large.samples[0].pairs) > len(small.samples[0].pairs)

    def test_invalid_theta(self):
        with pytest.raises(ConfigError):
            LinkPredictionTask(make_dtdg(), embed_dim=4, theta=0.0)

    def test_needs_two_timesteps(self):
        d = evolving_dtdg(10, 1, 20, churn=0.2, seed=0)
        with pytest.raises(DatasetError):
            LinkPredictionTask(d, embed_dim=4)

    def test_block_loss_additive(self):
        d = make_dtdg()
        task = LinkPredictionTask(d, embed_dim=4, theta=0.4, seed=0)
        g = np.random.default_rng(0)
        embeds = [Tensor(g.normal(size=(16, 4)))
                  for _ in range(task.num_train_timesteps)]
        full = task.loss_full(embeds).item()
        split = (task.loss_block(embeds[:3], 0).item() +
                 task.loss_block(embeds[3:], 3).item())
        assert split == pytest.approx(full, rel=1e-12)

    def test_block_loss_ignores_test_timestep(self):
        d = make_dtdg()
        task = LinkPredictionTask(d, embed_dim=4, theta=0.4, seed=0)
        g = np.random.default_rng(0)
        extra = [Tensor(g.normal(size=(16, 4)))]
        # block starting beyond the training range contributes nothing
        assert task.loss_block(extra, task.num_train_timesteps) is None

    def test_accuracies_in_range(self):
        d = make_dtdg()
        task = LinkPredictionTask(d, embed_dim=4, theta=0.4, seed=0)
        g = np.random.default_rng(0)
        embeds = [Tensor(g.normal(size=(16, 4)))
                  for _ in range(task.num_train_timesteps)]
        acc = task.test_accuracy(embeds[-1])
        assert 0.0 <= acc <= 1.0
        assert 0.0 <= task.train_accuracy(embeds) <= 1.0


class TestNodeClassificationTask:
    def test_1d_labels_tiled(self):
        labels = np.array([0, 1, 0, 1])
        task = NodeClassificationTask(labels, num_timesteps=3, embed_dim=4)
        assert task.labels.shape == (3, 4)

    def test_loss_and_accuracy(self):
        labels = np.array([0, 1, 0, 1])
        task = NodeClassificationTask(labels, num_timesteps=2, embed_dim=4)
        g = np.random.default_rng(0)
        embeds = [Tensor(g.normal(size=(4, 4))) for _ in range(2)]
        loss = task.loss_full(embeds)
        assert loss.item() > 0
        assert 0.0 <= task.accuracy(embeds) <= 1.0

    def test_label_validation(self):
        with pytest.raises(ConfigError):
            NodeClassificationTask(np.array([0, 5]), 2, 4, num_classes=2)
        with pytest.raises(ConfigError):
            NodeClassificationTask(np.zeros((3, 4), dtype=int), 2, 4)


class TestSingleDeviceTrainer:
    def _trainer(self, num_blocks=1, use_gd=False, device=None, seed=0):
        d = make_dtdg(seed=seed)
        model = build_model("tmgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        task = LinkPredictionTask(d, embed_dim=4, theta=0.4, seed=0)
        cfg = TrainerConfig(num_blocks=num_blocks,
                            use_graph_difference=use_gd,
                            learning_rate=0.02)
        return SingleDeviceTrainer(model, d, task, cfg, device=device)

    def test_baseline_epoch(self):
        trainer = self._trainer()
        result = trainer.train_epoch()
        assert np.isfinite(result.loss)
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_checkpoint_matches_baseline_loss(self):
        a = self._trainer(num_blocks=1, seed=1)
        b = self._trainer(num_blocks=3, seed=1)
        loss_a = a.train_epoch().loss
        loss_b = b.train_epoch().loss
        assert loss_a == pytest.approx(loss_b, rel=1e-8)

    def test_fit_descends(self):
        trainer = self._trainer(num_blocks=2)
        results = trainer.fit(10)
        assert results[-1].loss < results[0].loss

    def test_device_memory_baseline_oom(self):
        spec = ClusterSpec.single_node(1, gpu_memory_bytes=13_000)
        device = Device(0, spec)
        trainer = self._trainer(num_blocks=1, device=device)
        with pytest.raises(DeviceOOM):
            trainer.train_epoch()

    def test_checkpoint_fits_where_baseline_ooms(self):
        spec = ClusterSpec.single_node(1, gpu_memory_bytes=13_000)
        base_device = Device(0, spec)
        ck_device = Device(0, spec)
        with pytest.raises(DeviceOOM):
            self._trainer(num_blocks=1, device=base_device).train_epoch()
        result = self._trainer(num_blocks=6, device=ck_device).train_epoch()
        assert np.isfinite(result.loss)
        assert ck_device.peak_in_use < base_device.spec.gpu_memory_bytes

    def test_gd_reduces_transfer_time(self):
        spec = ClusterSpec.single_node(1)
        base = self._trainer(num_blocks=2, use_gd=False,
                             device=Device(0, spec), seed=2)
        gd = self._trainer(num_blocks=2, use_gd=True,
                           device=Device(0, spec), seed=2)
        r_base = base.train_epoch()
        r_gd = gd.train_epoch()
        assert r_gd.breakdown.transfer < r_base.breakdown.transfer
        assert r_gd.gd_savings_ratio > 1.0
        # numerics identical regardless of transfer method
        assert r_gd.loss == pytest.approx(r_base.loss, rel=1e-9)

    def test_transfer_charged_twice_under_checkpoint(self):
        spec = ClusterSpec.single_node(1)
        once = self._trainer(num_blocks=1, device=Device(0, spec), seed=3)
        twice = self._trainer(num_blocks=2, device=Device(0, spec), seed=3)
        r1 = once.train_epoch()
        r2 = twice.train_epoch()
        assert r2.transfer_bytes > 1.8 * r1.transfer_bytes

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            TrainerConfig(num_blocks=0)
        with pytest.raises(ConfigError):
            TrainerConfig(learning_rate=-1)
