"""Tests for smoothing, features and the Ã·X precompute."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import DTDG, GraphSnapshot, evolving_dtdg
from repro.nn import m_matrix
from repro.train import (apply_edge_life, apply_mproduct_smoothing,
                         compute_laplacians, degree_features,
                         precompute_aggregation, smooth_for_model)


def snap(n, pairs, values=None):
    return GraphSnapshot(n, np.array(pairs, dtype=np.int64).reshape(-1, 2),
                         values)


class TestDegreeFeatures:
    def test_shapes_and_values(self):
        d = DTDG([snap(3, [[0, 1], [0, 2]]), snap(3, [[1, 0]])])
        frames = degree_features(d)
        assert len(frames) == 2
        assert frames[0].shape == (3, 2)
        # frame 0: in-degrees [0,1,1], out-degrees [2,0,0]
        np.testing.assert_array_equal(frames[0][:, 0], [0, 1, 1])
        np.testing.assert_array_equal(frames[0][:, 1], [2, 0, 0])


class TestEdgeLife:
    def test_carries_edges_forward(self):
        d = DTDG([snap(4, [[0, 1]]), snap(4, [[1, 2]]), snap(4, [[2, 3]])])
        out = apply_edge_life(d, life=2)
        assert out[0].edge_set() == {(0, 1)}
        assert out[1].edge_set() == {(0, 1), (1, 2)}
        assert out[2].edge_set() == {(1, 2), (2, 3)}  # (0,1) expired

    def test_values_accumulate(self):
        d = DTDG([snap(3, [[0, 1]], values=[2.0]),
                  snap(3, [[0, 1]], values=[3.0])])
        out = apply_edge_life(d, life=2)
        np.testing.assert_array_equal(out[1].values, [5.0])

    def test_life_one_is_identity(self):
        d = evolving_dtdg(20, 4, 40, churn=0.3, seed=0)
        out = apply_edge_life(d, life=1)
        for a, b in zip(d, out):
            assert a == b

    def test_increases_density_and_overlap(self):
        d = evolving_dtdg(50, 8, 100, churn=0.6, seed=1)
        out = apply_edge_life(d, life=4)
        assert out.total_nnz > d.total_nnz
        assert out.mean_topology_overlap() > d.mean_topology_overlap()

    def test_invalid_life(self):
        d = evolving_dtdg(10, 3, 20, churn=0.2, seed=0)
        with pytest.raises(ConfigError):
            apply_edge_life(d, life=0)


class TestMProductSmoothing:
    def test_adjacency_matches_matrix_form(self):
        d = evolving_dtdg(15, 5, 30, churn=0.5, seed=2)
        window = 3
        out = apply_mproduct_smoothing(d, window)
        m = m_matrix(5, window)
        for t in range(5):
            expected = sum(m[t, k] * d[k].adjacency().csr.toarray()
                           for k in range(5))
            np.testing.assert_allclose(out[t].adjacency().csr.toarray(),
                                       expected, atol=1e-12)

    def test_features_smoothed(self):
        d = evolving_dtdg(10, 4, 20, churn=0.3, seed=3)
        d.set_features([np.full((10, 2), float(t)) for t in range(4)])
        out = apply_mproduct_smoothing(d, window=2)
        # frame 1 = average of frames 0 and 1 = 0.5
        np.testing.assert_allclose(out.features[1], np.full((10, 2), 0.5))

    def test_features_kept_raw_when_disabled(self):
        d = evolving_dtdg(10, 4, 20, churn=0.3, seed=3)
        d.set_features([np.full((10, 2), float(t)) for t in range(4)])
        out = apply_mproduct_smoothing(d, window=2, smooth_features=False)
        np.testing.assert_array_equal(out.features[1], d.features[1])

    def test_increases_overlap(self):
        d = evolving_dtdg(50, 8, 100, churn=0.6, seed=4)
        out = apply_mproduct_smoothing(d, window=4)
        assert out.mean_topology_overlap() > d.mean_topology_overlap()

    def test_invalid_window(self):
        d = evolving_dtdg(10, 3, 20, churn=0.2, seed=0)
        with pytest.raises(ConfigError):
            apply_mproduct_smoothing(d, window=0)


class TestSmoothForModel:
    def test_routing(self):
        d = evolving_dtdg(20, 4, 40, churn=0.4, seed=5)
        assert smooth_for_model(d, "cdgcn") is d
        tm = smooth_for_model(d, "tmgcn", window=3)
        eg = smooth_for_model(d, "egcn", edge_life=3)
        assert tm.total_nnz > d.total_nnz
        assert eg.total_nnz > d.total_nnz

    def test_unknown_model(self):
        d = evolving_dtdg(10, 3, 20, churn=0.2, seed=0)
        with pytest.raises(ConfigError):
            smooth_for_model(d, "gat")


class TestComputeLaplacians:
    """compute_laplacians streams through the LaplacianMaintainer; it
    must stay bit-compatible with a per-snapshot full rebuild for each
    model's own preprocessing (raw / edge-life / M-product — the three
    paper models' inputs)."""

    @pytest.mark.parametrize("model_name", ["cdgcn", "egcn", "tmgcn"])
    def test_bit_compatible_with_full_rebuild(self, model_name):
        from repro.graph import normalized_laplacian
        raw = evolving_dtdg(30, 6, 80, churn=0.35, seed=9)
        d = smooth_for_model(raw, model_name)
        laps = compute_laplacians(d)
        assert len(laps) == d.num_timesteps
        for lap, s in zip(laps, d.snapshots):
            ref = normalized_laplacian(s).csr
            np.testing.assert_array_equal(lap.csr.indptr, ref.indptr)
            np.testing.assert_array_equal(lap.csr.indices, ref.indices)
            np.testing.assert_array_equal(lap.csr.data, ref.data)

    def test_operators_are_independent_copies(self):
        d = evolving_dtdg(15, 4, 40, churn=0.5, seed=2)
        laps = compute_laplacians(d)
        # mutating one timestep's operator must not leak into another
        laps[0].csr.data[:] = 0.0
        assert np.abs(laps[1].csr.data).max() > 0

    def test_single_snapshot_timeline(self):
        from repro.graph import normalized_laplacian
        d = DTDG([snap(3, [[0, 1]])])
        laps = compute_laplacians(d)
        assert len(laps) == 1
        np.testing.assert_array_equal(
            laps[0].csr.toarray(),
            normalized_laplacian(d[0]).csr.toarray())


class TestPrecompute:
    def test_matches_spmm(self):
        d = evolving_dtdg(12, 3, 24, churn=0.2, seed=6)
        frames = degree_features(d)
        laps = compute_laplacians(d)
        pre = precompute_aggregation(laps, frames)
        for t in range(3):
            np.testing.assert_allclose(pre[t], laps[t].csr @ frames[t])

    def test_count_mismatch(self):
        d = evolving_dtdg(12, 3, 24, churn=0.2, seed=6)
        laps = compute_laplacians(d)
        with pytest.raises(ConfigError):
            precompute_aggregation(laps, [np.zeros((12, 2))])
