"""Tests for timeline gradient checkpointing (paper §3.1).

The central property: the checkpointed backward must produce *exactly*
the gradients of the full-graph backward, for every model and any block
count — this is what lets the paper compare Base and checkpointed runs
purely on time/memory.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import evolving_dtdg
from repro.models import MODEL_NAMES, build_model
from repro.tensor import Tensor
from repro.train import CheckpointRunner, LinkPredictionTask
from repro.train.checkpoint import carry_nbytes, flatten_tensors
from repro.train.preprocess import compute_laplacians, degree_features


N, T = 14, 8


def make_workload(seed=0):
    dtdg = evolving_dtdg(N, T + 1, 35, churn=0.25, seed=seed)
    dtdg.set_features(degree_features(dtdg))
    laps = compute_laplacians(dtdg)
    frames = [Tensor(f) for f in dtdg.features]
    return dtdg, laps, frames


def full_gradients(model, task, laps, frames):
    model.zero_grad()
    task.head.zero_grad()
    outs = model(laps, frames)
    loss = task.loss_full(outs)
    loss.backward()
    grads = {name: p.grad.copy()
             for name, p in list(model.named_parameters()) +
             list(task.head.named_parameters())}
    return loss.item(), grads


class TestFlattenHelpers:
    def test_flatten_deterministic_order(self):
        a, b, c = Tensor([1.0]), Tensor([2.0]), Tensor([3.0])
        structure = [(a, b), {"z": c, "a": a}]
        flat = flatten_tensors(structure)
        assert flat == [a, b, a, c]  # dict walked in sorted key order

    def test_carry_nbytes(self):
        carry = [(Tensor(np.zeros((2, 3))), Tensor(np.zeros(4)))]
        assert carry_nbytes(carry) == 2 * 3 * 8 + 4 * 8


@pytest.mark.parametrize("model_name", MODEL_NAMES)
@pytest.mark.parametrize("num_blocks", [2, 4, 8])
class TestGradientEquivalence:
    def test_matches_full_backward(self, model_name, num_blocks):
        dtdg, laps, frames = make_workload()
        model = build_model(model_name, in_features=2, hidden=4,
                            embed_dim=4, seed=0)
        task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.3, seed=0)
        t_train = task.num_train_timesteps

        ref_loss, ref_grads = full_gradients(model, task,
                                             laps[:t_train],
                                             frames[:t_train])

        model.zero_grad()
        task.head.zero_grad()
        runner = CheckpointRunner(model, num_blocks)
        result = runner.run_epoch(laps[:t_train], frames[:t_train],
                                  task.loss_block)

        assert result.loss == pytest.approx(ref_loss, rel=1e-9)
        for name, p in list(model.named_parameters()) + \
                list(task.head.named_parameters()):
            assert p.grad is not None, f"{name} missing grad"
            np.testing.assert_allclose(
                p.grad, ref_grads[name], rtol=1e-7, atol=1e-10,
                err_msg=f"gradient mismatch for {name} "
                        f"({model_name}, nb={num_blocks})")


class TestCheckpointMechanics:
    def test_single_block_equals_full(self):
        dtdg, laps, frames = make_workload(seed=1)
        model = build_model("cdgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.3, seed=0)
        t_train = task.num_train_timesteps
        ref_loss, ref_grads = full_gradients(model, task, laps[:t_train],
                                             frames[:t_train])
        model.zero_grad()
        task.head.zero_grad()
        result = CheckpointRunner(model, 1).run_epoch(
            laps[:t_train], frames[:t_train], task.loss_block)
        assert result.loss == pytest.approx(ref_loss, rel=1e-9)

    def test_peak_live_timesteps_shrinks_with_blocks(self):
        dtdg, laps, frames = make_workload(seed=2)
        model = build_model("tmgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.3, seed=0)
        t_train = task.num_train_timesteps
        peaks = {}
        for nb in (1, 2, 4):
            model.zero_grad()
            result = CheckpointRunner(model, nb).run_epoch(
                laps[:t_train], frames[:t_train], task.loss_block)
            peaks[nb] = result.peak_live_timesteps
        assert peaks[1] > peaks[2] > peaks[4]

    def test_carry_bytes_grow_with_blocks(self):
        dtdg, laps, frames = make_workload(seed=3)
        model = build_model("cdgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.3, seed=0)
        t_train = task.num_train_timesteps
        bytes_by_nb = {}
        for nb in (2, 4):
            model.zero_grad()
            result = CheckpointRunner(model, nb).run_epoch(
                laps[:t_train], frames[:t_train], task.loss_block)
            bytes_by_nb[nb] = result.carry_bytes
        assert bytes_by_nb[4] > bytes_by_nb[2]

    def test_more_blocks_than_timesteps_clamped(self):
        dtdg, laps, frames = make_workload(seed=4)
        model = build_model("tmgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.3, seed=0)
        t_train = task.num_train_timesteps
        result = CheckpointRunner(model, 100).run_epoch(
            laps[:t_train], frames[:t_train], task.loss_block)
        assert result.num_blocks == t_train

    def test_invalid_blocks(self):
        model = build_model("tmgcn", seed=0)
        with pytest.raises(ConfigError):
            CheckpointRunner(model, 0)

    def test_empty_timeline_rejected(self):
        model = build_model("tmgcn", seed=0)
        with pytest.raises(ConfigError):
            CheckpointRunner(model, 2).run_epoch([], [], lambda e, t: None)

    def test_forward_streaming_matches_forward(self):
        dtdg, laps, frames = make_workload(seed=5)
        model = build_model("cdgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        full = model(laps, frames)
        streamed = CheckpointRunner(model, 3).forward_streaming(laps, frames)
        assert len(streamed) == len(full)
        for a, b in zip(streamed, full):
            np.testing.assert_allclose(a.data, b.data, atol=1e-10)

    def test_forward_streaming_empty(self):
        model = build_model("cdgcn", seed=0)
        assert CheckpointRunner(model, 2).forward_streaming([], []) == []

    def test_training_converges_with_checkpointing(self):
        from repro.tensor import Adam
        dtdg, laps, frames = make_workload(seed=6)
        model = build_model("tmgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.5, seed=0)
        t_train = task.num_train_timesteps
        params = model.parameters() + task.head.parameters()
        opt = Adam(params, lr=0.02)
        runner = CheckpointRunner(model, 4)
        losses = []
        for _ in range(15):
            opt.zero_grad()
            result = runner.run_epoch(laps[:t_train], frames[:t_train],
                                      task.loss_block)
            opt.step()
            losses.append(result.loss)
        assert losses[-1] < losses[0]


class TestModelPersistence:
    """save/load of trained models — the train→serve hand-off."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_roundtrip_reproduces_embeddings(self, name, tmp_path):
        from repro.train import (load_model_checkpoint,
                                 save_model_checkpoint)
        _, laps, frames = make_workload(seed=2)
        model = build_model(name, in_features=2, seed=3)
        path = str(tmp_path / f"{name}.npz")
        save_model_checkpoint(path, model, name)
        # rebuild with a different seed: loaded weights must win
        loaded = load_model_checkpoint(path, seed=99)
        assert loaded.model_name == name
        want = model(laps, frames)
        got = loaded.model(laps, frames)
        for w, g in zip(want, got):
            np.testing.assert_allclose(g.data, w.data, atol=1e-12)

    def test_heads_roundtrip(self, tmp_path):
        from repro.nn.linear import EdgeScorer, Linear
        from repro.train import (load_model_checkpoint,
                                 save_model_checkpoint)
        rng = np.random.default_rng(0)
        model = build_model("cdgcn", in_features=2, seed=0)
        link = EdgeScorer(model.embed_dim, 2, rng)
        fraud = Linear(model.embed_dim, 2, rng)
        path = str(tmp_path / "full.npz")
        save_model_checkpoint(path, model, "cdgcn", link_head=link,
                              fraud_head=fraud,
                              extra={"dataset": "amlsim"})
        loaded = load_model_checkpoint(path)
        np.testing.assert_allclose(loaded.link_head.fc.weight.data,
                                   link.fc.weight.data)
        np.testing.assert_allclose(loaded.fraud_head.weight.data,
                                   fraud.weight.data)
        assert loaded.extra == {"dataset": "amlsim"}

    def test_suffixless_path_roundtrips(self, tmp_path):
        """np.savez appends '.npz' on its own; the checkpoint writer
        must not, so the returned path always exists."""
        import os
        from repro.train import (load_model_checkpoint,
                                 save_model_checkpoint)
        model = build_model("cdgcn", in_features=2, seed=0)
        path = save_model_checkpoint(str(tmp_path / "ckpt"), model,
                                     "cdgcn")
        assert os.path.exists(path)
        assert load_model_checkpoint(path).model_name == "cdgcn"

    def test_alias_resolves_to_canonical_name(self, tmp_path):
        from repro.train import (load_model_checkpoint,
                                 save_model_checkpoint)
        model = build_model("evolvegcn", in_features=2, seed=0)
        path = save_model_checkpoint(str(tmp_path / "e.npz"), model,
                                     "evolvegcn")
        assert load_model_checkpoint(path).model_name == "egcn"

    def test_unknown_model_name_rejected(self, tmp_path):
        from repro.train import save_model_checkpoint
        model = build_model("cdgcn", in_features=2, seed=0)
        with pytest.raises(ConfigError):
            save_model_checkpoint(str(tmp_path / "x.npz"), model, "gat")

    def test_missing_file_rejected(self):
        from repro.train import load_model_checkpoint
        with pytest.raises(ConfigError):
            load_model_checkpoint("/nonexistent/ckpt.npz")
