"""Cross-timestep aggregation reuse: exactness, gradients, fallbacks.

The reuse layer's contract is *bit-exactness*: patched/memoized
aggregations (and the gradients routed through them) must equal the
always-full execution — not approximately, exactly.  These tests pin
that contract on the kernel flavors, on the cache's decision cascade,
and end-to-end through both trainers.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterSpec
from repro.graph.diff import diff_snapshots, encode_sequence
from repro.graph.dtdg import DTDG
from repro.graph.inc_laplacian import diff_touched_vertices
from repro.graph.snapshot import GraphSnapshot
from repro.models import MODEL_NAMES, build_model
from repro.tensor import Tensor
from repro.tensor.sparse import (SparseMatrix, spmm, spmm_memo, spmm_patch)
from repro.train.distributed import DistConfig, DistributedTrainer
from repro.train.preprocess import compute_laplacians_with_diffs
from repro.train.reuse import AggregationCache
from repro.train.tasks import LinkPredictionTask
from repro.train.trainer import SingleDeviceTrainer, TrainerConfig


def _chain(n=40, steps=5, seed=0):
    """A snapshot chain whose transitions touch a couple of edges."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < 3 * n:
        u, v = rng.integers(0, n, size=2)
        edges.add((int(u), int(v)))
    snaps = []
    current = set(edges)
    for _ in range(steps):
        arr = np.array(sorted(current), dtype=np.int64)
        snaps.append(GraphSnapshot(n, arr))
        # mutate a couple of edges for the next step
        current = set(current)
        for _ in range(2):
            current.discard(next(iter(current)))
            u, v = rng.integers(0, n, size=2)
            current.add((int(u), int(v)))
    return snaps


class TestKernelFlavors:
    def setup_method(self):
        rng = np.random.default_rng(7)
        self.s = SparseMatrix(
            (rng.random((30, 30)) < 0.2).astype(np.float64))
        self.x = Tensor(rng.standard_normal((30, 4)), requires_grad=True)

    def test_spmm_memo_values_and_gradient(self):
        full = spmm(self.s, self.x)
        memo = spmm_memo(self.s, self.x, full.data)
        np.testing.assert_array_equal(memo.data, full.data)
        g = np.random.default_rng(1).standard_normal(full.shape)
        full.backward(g)
        ref = self.x.grad.copy()
        self.x.zero_grad()
        memo.backward(g)
        np.testing.assert_array_equal(self.x.grad, ref)

    def test_spmm_patch_rows_bit_identical(self):
        full = spmm(self.s, Tensor(self.x.data))
        rows = np.array([1, 5, 9, 22], dtype=np.int64)
        base = full.data.copy()
        base[rows] = -1.0  # stale rows the patch must overwrite
        out = spmm_patch(self.s, Tensor(self.x.data), rows, base)
        np.testing.assert_array_equal(out.data, full.data)

    def test_spmm_patch_chain_gradients_match_full(self):
        """Gradient through a patched chain == gradient through two
        independent full products, when the untouched rows carry the
        same function (here: literally the same upstream tensor)."""
        rows = np.array([2, 3, 17], dtype=np.int64)
        # reference: two full products of the same operand
        x_ref = Tensor(self.x.data.copy(), requires_grad=True)
        y0_ref = spmm(self.s, x_ref)
        y1_ref = spmm(self.s, x_ref)
        (y0_ref.sum() + y1_ref.sum()).backward()
        # chained: second product patches the first
        x = Tensor(self.x.data.copy(), requires_grad=True)
        y0 = spmm(self.s, x)
        y1 = spmm_patch(self.s, x, rows, y0.data, parent=y0)
        (y0.sum() + y1.sum()).backward()
        np.testing.assert_allclose(x.grad, x_ref.grad, atol=1e-12)

    def test_spmm_patch_empty_rows_is_free_reuse(self):
        full = spmm(self.s, Tensor(self.x.data))
        out = spmm_patch(self.s, Tensor(self.x.data),
                         np.empty(0, dtype=np.int64), full.data)
        assert out.data is full.data  # no copy on a zero-row patch


class TestAggregationCache:
    def _cache(self, snaps, temporal=("local",), crossover=0.9):
        dtdg = DTDG(list(snaps), name="chain")
        laps, diffs = compute_laplacians_with_diffs(dtdg)
        return laps, AggregationCache(laps, diffs, snaps, list(temporal),
                                      crossover=crossover)

    def test_patched_chain_equals_full(self):
        snaps = _chain()
        laps, cache = self._cache(snaps)
        x = Tensor(np.random.default_rng(3).standard_normal((40, 6)))
        outs = [cache.aggregate(0, t, lap, x)
                for t, lap in enumerate(laps)]
        for lap, out in zip(laps, outs):
            np.testing.assert_array_equal(out.data, (lap.csr @ x.data))
        assert cache.stats.patches == len(laps) - 1
        assert cache.stats.full_spmm == 1

    def test_memo_hit_on_repeated_operand(self):
        snaps = _chain()
        laps, cache = self._cache(snaps)
        x = Tensor(np.ones((40, 3)))
        first = cache.aggregate(0, 2, laps[2], x)
        again = cache.aggregate(0, 2, laps[2], Tensor(x.data.copy()))
        assert cache.stats.memo_hits == 1
        np.testing.assert_array_equal(first.data, again.data)

    def test_crossover_falls_back_to_full(self):
        snaps = _chain()
        laps, cache = self._cache(snaps, crossover=1e-6)
        x = Tensor(np.ones((40, 3)))
        for t, lap in enumerate(laps):
            out = cache.aggregate(0, t, lap, x)
            np.testing.assert_array_equal(out.data, lap.csr @ x.data)
        assert cache.stats.patches == 0
        assert cache.stats.crossover_fallbacks == len(laps) - 1

    def test_hintless_diff_forbids_patching(self):
        snaps = _chain()
        dtdg = DTDG(list(snaps), name="chain")
        laps, diffs = compute_laplacians_with_diffs(dtdg)
        stripped = [type(d)(removed=d.removed, added=d.added,
                            values=d.values,
                            base_checksum=d.base_checksum)
                    for d in diffs]
        cache = AggregationCache(laps, stripped, snaps, ["local"])
        x = Tensor(np.ones((40, 3)))
        for t, lap in enumerate(laps):
            out = cache.aggregate(0, t, lap, x)
            np.testing.assert_array_equal(out.data, lap.csr @ x.data)
        assert cache.stats.patches == 0

    def test_unknown_operator_runs_full(self):
        snaps = _chain()
        laps, cache = self._cache(snaps)
        foreign = SparseMatrix(np.eye(40))
        x = Tensor(np.ones((40, 3)))
        out = cache.aggregate(0, 1, foreign, x)
        np.testing.assert_array_equal(out.data, x.data)
        assert cache.stats.full_spmm == 1

    def test_touched_vertices_include_value_changes(self):
        n = 6
        a = GraphSnapshot(n, np.array([[0, 1], [2, 3], [4, 5]]),
                          np.array([1.0, 1.0, 1.0]))
        b = GraphSnapshot(n, np.array([[0, 1], [2, 3], [4, 5]]),
                          np.array([1.0, 7.0, 1.0]))
        diff = diff_snapshots(a, b)
        touched = diff_touched_vertices(diff, b)
        np.testing.assert_array_equal(touched, [2, 3])
        # a hint-less diff cannot name value changes
        stripped = type(diff)(removed=diff.removed, added=diff.added,
                              values=diff.values)
        assert diff_touched_vertices(stripped, b) is None


def _amlsim(seed=5):
    from repro.graph import AMLSimConfig, generate_amlsim
    return generate_amlsim(AMLSimConfig(
        num_accounts=250, num_timesteps=7, background_per_step=900,
        partner_persistence=0.9, seed=seed)).dtdg


class TestTrainerExactness:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_single_device_losses_and_grads_exact(self, name):
        grads = {}
        losses = {}
        for reuse in (False, True):
            dtdg = _amlsim()
            model = build_model(name, in_features=2, seed=0)
            task = LinkPredictionTask(dtdg, embed_dim=model.embed_dim,
                                      seed=1)
            trainer = SingleDeviceTrainer(
                model, dtdg, task,
                TrainerConfig(num_blocks=2, reuse_aggregation=reuse))
            losses[reuse] = [r.loss for r in trainer.fit(2)]
            grads[reuse] = [None if p.grad is None else p.grad.copy()
                            for p in model.parameters()]
        assert losses[False] == pytest.approx(losses[True], abs=1e-9)
        for a, b in zip(grads[False], grads[True]):
            if a is None:
                assert b is None
            else:
                np.testing.assert_allclose(a, b, atol=1e-9)

    def test_reuse_reports_aggregation_savings(self):
        dtdg = _amlsim()
        model = build_model("cdgcn", in_features=2, seed=0)
        task = LinkPredictionTask(dtdg, embed_dim=model.embed_dim, seed=1)
        trainer = SingleDeviceTrainer(
            model, dtdg, task,
            TrainerConfig(num_blocks=2, reuse_aggregation=True))
        results = trainer.fit(2)
        warm = results[1]
        assert warm.agg_flops_full_equivalent > 0
        # the checkpointed re-run and streaming sweeps memoize, so the
        # warm epoch executes well under half the always-full FLOPs
        assert warm.agg_flops < 0.5 * warm.agg_flops_full_equivalent
        assert trainer.reuse.stats.memo_hits > 0

    @pytest.mark.parametrize("mode", ["snapshot", "vertex", "hybrid"])
    def test_distributed_losses_exact_and_halos_shrink(self, mode):
        losses = {}
        last = {}
        for reuse in (False, True):
            dtdg = _amlsim()
            model = build_model("tmgcn", in_features=2, seed=0)
            task = LinkPredictionTask(dtdg, embed_dim=model.embed_dim,
                                      seed=1)
            cluster = Cluster(ClusterSpec(), 4)
            kwargs = {"group_size": 4} if mode == "hybrid" else {}
            trainer = DistributedTrainer(
                model, dtdg, task, cluster,
                DistConfig(partitioning=mode, reuse_aggregation=reuse,
                           **kwargs))
            results = trainer.fit(2)
            losses[reuse] = [r.loss for r in results]
            last[reuse] = results[-1]
        assert losses[False] == pytest.approx(losses[True], abs=1e-9)
        if mode in ("vertex", "hybrid"):
            # delta halos ship strictly less than the full exchange
            assert last[True].comm_volume_units < \
                last[True].comm_volume_full_units
            assert last[True].comm_volume_units < \
                last[False].comm_volume_units
        else:
            assert last[True].comm_volume_units == \
                last[True].comm_volume_full_units


class TestWindowPropagation:
    def test_tmgcn_deeper_layers_patch_and_stay_exact(self):
        """A sparse ring with one-edge deltas: TM-GCN's window profile
        keeps deeper layers patchable, and the outputs stay identical
        to the hook-free forward."""
        n = 300
        ring = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
        snaps = []
        edges = ring
        for t in range(6):
            snaps.append(GraphSnapshot(n, edges))
            extra = np.array([[t * 17 % n, (t * 29 + 3) % n]])
            edges = np.concatenate([ring, extra])
        dtdg = DTDG(snaps, name="ring")
        laps, diffs = compute_laplacians_with_diffs(dtdg)
        model = build_model("tmgcn", in_features=2, seed=0, window=2)
        from repro.train.preprocess import degree_features
        frames = [Tensor(f) for f in degree_features(dtdg)]

        ref = model(laps, frames)
        cache = AggregationCache(laps, diffs, snaps,
                                 model.reuse_profile(), crossover=0.5)
        model.set_aggregation_hook(cache.aggregate)
        try:
            got = model(laps, frames)
        finally:
            model.set_aggregation_hook(None)
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a.data, b.data)
        # both layers patched (layer 1 through the window profile)
        assert cache.stats.patches > len(snaps) - 1
