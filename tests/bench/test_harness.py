"""Tests for the benchmark harness: reporting, speedup math, workload
calibration and the run_point driver."""

import numpy as np
import pytest

from repro.bench import (BENCH_SCALE, DATASET_NAMES, PointSpec,
                         calibrated_overrides, fmt, hardware_scale,
                         render_table, run_point, speedup_series)
from repro.bench.workloads import bench_dtdg, raw_bench_dtdg
from repro.cluster import ClusterSpec
from repro.graph import evolving_dtdg
from repro.train.preprocess import degree_features


class TestReporting:
    def test_fmt_variants(self):
        assert fmt(None) == "DNR"
        assert fmt(float("nan")) == "-"
        assert fmt(1234.5) == "1,234"
        assert fmt(12.34) == "12.3"
        assert fmt(0.1234) == "0.123"
        assert fmt("x") == "x"
        assert fmt(7) == "7"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 44]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows aligned


class TestSpeedupSeries:
    def test_reference_is_p1(self):
        s = speedup_series({1: 100.0, 2: 50.0, 4: 25.0})
        assert s[1] == pytest.approx(1.0)
        assert s[4] == pytest.approx(4.0)

    def test_dnr_reference_shifts(self):
        # paper convention: when P=1 DNR'd, smallest running P gets
        # speedup = P
        s = speedup_series({1: None, 4: 100.0, 8: 50.0})
        assert s[4] == pytest.approx(4.0)
        assert s[8] == pytest.approx(8.0)

    def test_all_dnr(self):
        assert speedup_series({1: None}) == {}


class TestWorkloadCalibration:
    def test_bench_scales_cover_paper_datasets(self):
        assert set(BENCH_SCALE) == set(DATASET_NAMES)

    def test_timelines_cover_p128(self):
        for name in DATASET_NAMES:
            assert raw_bench_dtdg(name).num_timesteps >= 129

    def test_bench_dtdg_cached(self):
        assert bench_dtdg("epinions", "tmgcn") is \
            bench_dtdg("epinions", "tmgcn")

    def test_hardware_scale_factors(self):
        edge, feat = hardware_scale("amlsim", "tmgcn")
        assert 0 < edge < 1e-3
        assert 0 < feat < 1e-3

    def test_overrides_scale_rates(self):
        ov = calibrated_overrides("amlsim", "tmgcn")
        base = ClusterSpec()
        assert ov["dense_flops"] < base.dense_flops
        assert ov["inter_bandwidth"] < base.inter_bandwidth
        assert ov["gpu_memory_bytes"] >= 1024
        # overrides build a valid spec
        ClusterSpec(**ov)

    def test_memory_headroom_scales_budget(self):
        small = calibrated_overrides("amlsim", "tmgcn",
                                     memory_headroom=1.0)
        big = calibrated_overrides("amlsim", "tmgcn", memory_headroom=4.0)
        assert big["gpu_memory_bytes"] > small["gpu_memory_bytes"]


class TestRunPoint:
    def _dtdg(self):
        d = evolving_dtdg(24, 13, 60, churn=0.2, seed=0)
        d.set_features(degree_features(d))
        return d

    def test_runs_and_reports(self):
        result = run_point(self._dtdg(), PointSpec(model="tmgcn",
                                                   num_ranks=2))
        assert result is not None
        assert result.breakdown.total > 0

    def test_blocks_capped_by_ranks(self):
        # T=12 train steps, P=8 -> starting nb = 1 (every rank owns a
        # timestep per block); must run without idle-block distortion
        result = run_point(self._dtdg(), PointSpec(model="tmgcn",
                                                   num_ranks=8,
                                                   num_blocks=8))
        assert result is not None

    def test_oom_returns_none_without_tuning(self):
        spec = PointSpec(model="tmgcn", num_ranks=1, num_blocks=1,
                         tune_blocks=False,
                         spec_overrides=(("gpu_memory_bytes", 2048),))
        assert run_point(self._dtdg(), spec) is None

    def test_oom_tuning_raises_block_count(self):
        # generous enough for deep checkpointing, too small for nb=1
        spec_fail = PointSpec(model="tmgcn", num_ranks=1, num_blocks=1,
                              tune_blocks=False,
                              spec_overrides=(("gpu_memory_bytes",
                                               60_000),))
        assert run_point(self._dtdg(), spec_fail) is None
        spec_tuned = PointSpec(model="tmgcn", num_ranks=1, num_blocks=1,
                               tune_blocks=True,
                               spec_overrides=(("gpu_memory_bytes",
                                                60_000),))
        assert run_point(self._dtdg(), spec_tuned) is not None

    def test_epoch_averaging(self):
        result = run_point(self._dtdg(), PointSpec(model="tmgcn",
                                                   num_ranks=2, epochs=3))
        assert result is not None
        assert np.isfinite(result.total_ms)
