"""Tests for vertex partitioning (comm plans) and hybrid partitioning."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import DTDG, GraphSnapshot, evolving_dtdg, normalized_laplacian
from repro.partition import (SnapshotCommPlan, VertexPartition,
                             hybrid_partition, hypergraph_vertex_partition,
                             random_vertex_partition)


class TestVertexPartition:
    def test_from_assignment_renames_contiguously(self):
        assignment = np.array([1, 0, 1, 0, 1])
        vp = VertexPartition.from_assignment(assignment, 2)
        # rank 0 owns 2 vertices renamed to 0..1, rank 1 owns 3 → 2..4
        assert vp.chunks.ranges == ((0, 2), (2, 5))
        owners_by_new_id = vp.chunks.owner_array()
        for old in range(5):
            assert owners_by_new_id[vp.perm[old]] == assignment[old]

    def test_perm_is_permutation(self):
        vp = random_vertex_partition(50, 4, seed=0)
        assert sorted(vp.perm.tolist()) == list(range(50))

    def test_rename_edges(self):
        vp = VertexPartition.from_assignment(np.array([1, 0]), 2)
        renamed = vp.rename_edges(np.array([[0, 1], [1, 0]]))
        np.testing.assert_array_equal(renamed, [[1, 0], [0, 1]])

    def test_rename_empty(self):
        vp = random_vertex_partition(10, 2)
        out = vp.rename_edges(np.empty((0, 2), dtype=np.int64))
        assert len(out) == 0

    def test_out_of_range_assignment(self):
        with pytest.raises(PartitionError):
            VertexPartition.from_assignment(np.array([0, 3]), 2)

    def test_random_partition_balanced(self):
        vp = random_vertex_partition(100, 4, seed=1)
        assert vp.imbalance() <= 1.05

    def test_hypergraph_partition_end_to_end(self):
        dtdg = evolving_dtdg(80, 4, 200, churn=0.3, seed=0)
        vp = hypergraph_vertex_partition(dtdg, 4, seed=0)
        assert vp.num_ranks == 4
        assert vp.num_vertices == 80
        assert vp.imbalance() < 1.6


class TestSnapshotCommPlan:
    def _plan(self, edges, assignment, p):
        n = len(assignment)
        snap = GraphSnapshot(n, edges)
        vp = VertexPartition.from_assignment(np.array(assignment), p)
        renamed = GraphSnapshot(n, vp.rename_edges(snap.edges))
        lap = normalized_laplacian(renamed)
        return SnapshotCommPlan.build(lap, vp), vp

    def test_no_comm_when_partition_respects_edges(self):
        # vertices {0,1} on rank 0, {2,3} on rank 1, edges only inside
        plan, _ = self._plan([[0, 1], [2, 3]], [0, 0, 1, 1], 2)
        assert plan.volume_vectors() == 0

    def test_cross_edge_requires_send(self):
        # edge 0 -> 2 crosses ranks: owner of column 0 must send to the
        # rank owning row 2's block... rows needing col 0 = {0 (diag), 2}
        plan, vp = self._plan([[2, 0]], [0, 0, 1, 1], 2)
        # column 0 (renamed) has support {0, 2}: rank 0 sends to rank 1
        assert plan.volume_vectors() == 1
        assert len(plan.send[0][1]) + len(plan.send[1][0]) == 1

    def test_volume_counts_lambda_minus_one(self):
        # star: vertex 0 feeds rows on both other ranks
        plan, _ = self._plan([[1, 0], [2, 0], [3, 0]], [0, 0, 1, 2], 3)
        # column 0 support {0,1,2,3} spans ranks {0,1,2}: λ−1 = 2 sends
        assert plan.volume_vectors() == 2

    def test_bytes_matrix(self):
        plan, _ = self._plan([[2, 0]], [0, 0, 1, 1], 2)
        mat = plan.bytes_matrix(feature_dim=6)
        assert mat.sum() == 1 * 6 * 4  # fp32 wire values
        assert mat[0, 1] == 24.0

    def test_empty_graph_no_comm(self):
        n = 6
        snap = GraphSnapshot(n, np.empty((0, 2), dtype=np.int64))
        vp = random_vertex_partition(n, 3, seed=0)
        plan = SnapshotCommPlan.build(normalized_laplacian(snap), vp)
        assert plan.volume_vectors() == 0

    def test_volume_increases_with_ranks(self):
        dtdg = evolving_dtdg(60, 1, 300, churn=0.0, seed=1)
        snap = dtdg.snapshots[0]
        volumes = []
        for p in (2, 4, 8):
            vp = random_vertex_partition(60, p, seed=0)
            renamed = GraphSnapshot(60, vp.rename_edges(snap.edges))
            plan = SnapshotCommPlan.build(normalized_laplacian(renamed), vp)
            volumes.append(plan.volume_vectors())
        assert volumes[0] < volumes[1] < volumes[2]


class TestHybridPartition:
    def test_paper_sec65_layout(self):
        # 2 GPUs, one group of 2: every snapshot split between the two
        plan = hybrid_partition(num_timesteps=10, num_vertices=100,
                                num_ranks=2, group_size=2)
        assert plan.num_groups == 1
        assert plan.groups[0] == (0, 1)
        assert plan.timestep_assignment.owned[0] == tuple(range(10))
        assert plan.row_chunks.ranges == ((0, 50), (50, 100))

    def test_multi_group(self):
        plan = hybrid_partition(8, 40, num_ranks=4, group_size=2)
        assert plan.num_groups == 2
        assert plan.groups == ((0, 1), (2, 3))
        # groups split the timeline contiguously
        assert plan.timestep_assignment.owned == ((0, 1, 2, 3), (4, 5, 6, 7))

    def test_group_of_rank_and_member_index(self):
        plan = hybrid_partition(8, 40, num_ranks=4, group_size=2)
        assert plan.group_of_rank(3) == 1
        assert plan.member_index(3) == 1
        with pytest.raises(PartitionError):
            plan.group_of_rank(9)

    def test_blockwise_variant(self):
        plan = hybrid_partition(8, 40, num_ranks=4, group_size=2,
                                num_blocks=2)
        # 2 groups, 2 blocks of 4 steps: group 0 gets steps {0,1} and {4,5}
        assert plan.timestep_assignment.owned[0] == (0, 1, 4, 5)

    def test_invalid_group_size(self):
        with pytest.raises(PartitionError):
            hybrid_partition(8, 40, num_ranks=4, group_size=3)
        with pytest.raises(PartitionError):
            hybrid_partition(8, 40, num_ranks=4, group_size=0)

    def test_group_size_not_dividing_num_ranks(self):
        # every non-divisor in range must be rejected, divisors accepted
        for gs in range(1, 7):
            if 6 % gs == 0:
                assert hybrid_partition(6, 30, num_ranks=6,
                                        group_size=gs).group_size == gs
            else:
                with pytest.raises(PartitionError):
                    hybrid_partition(6, 30, num_ranks=6, group_size=gs)

    def test_single_snapshot_input(self):
        # T=1, two groups: group 0 owns the lone snapshot, group 1 idles
        # (the §6.5 idle-rank limitation), rows still split in-group
        plan = hybrid_partition(1, 20, num_ranks=4, group_size=2)
        assert plan.timestep_assignment.owned == ((0,), ())
        plan.timestep_assignment.validate()
        assert plan.row_chunks.ranges == ((0, 10), (10, 20))
        # single snapshot on a single group leaves nobody idle
        solo = hybrid_partition(1, 20, num_ranks=2, group_size=2)
        assert solo.timestep_assignment.owned == ((0,),)

    def test_more_ranks_than_timesteps(self):
        # P=8, T=3 with group_size 2 → 4 groups, one idle
        plan = hybrid_partition(3, 20, num_ranks=8, group_size=2)
        assert plan.timestep_assignment.owned == ((0,), (1,), (2,), ())
        plan.timestep_assignment.validate()
        owners = plan.timestep_assignment.owner_map()
        assert owners.tolist() == [0, 1, 2]
        # every rank still resolves to a group and a member slot
        for rank in range(8):
            g = plan.group_of_rank(rank)
            assert rank in plan.groups[g]
            assert plan.groups[g][plan.member_index(rank)] == rank

    def test_group_wider_than_vertex_set(self):
        # group_size > V: trailing members own empty row ranges but the
        # ranges still tile the vertex set
        plan = hybrid_partition(2, 5, num_ranks=8, group_size=8)
        sizes = [plan.row_chunks.size(r) for r in range(8)]
        assert sum(sizes) == 5
        assert sizes[:5] == [1] * 5 and sizes[5:] == [0] * 3
