"""Tests for snapshot partitioning and the shared partition types."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.partition import (TimestepAssignment, VertexChunks, block_ranges,
                             blockwise_snapshot_partition, contiguous_chunks,
                             snapshot_partition)


class TestContiguousChunks:
    def test_even_split(self):
        assert contiguous_chunks(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loaded(self):
        assert contiguous_chunks(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_parts_than_items(self):
        chunks = contiguous_chunks(2, 4)
        sizes = [hi - lo for lo, hi in chunks]
        assert sizes == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(PartitionError):
            contiguous_chunks(4, 0)
        with pytest.raises(PartitionError):
            contiguous_chunks(-1, 2)

    @given(st.integers(0, 60), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_cover_disjoint_balanced(self, total, parts):
        chunks = contiguous_chunks(total, parts)
        assert len(chunks) == parts
        covered = [i for lo, hi in chunks for i in range(lo, hi)]
        assert covered == list(range(total))
        sizes = [hi - lo for lo, hi in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestSnapshotPartition:
    def test_paper_layout(self):
        # T=6, P=3 as in Fig. 3a: each rank owns 2 contiguous snapshots
        a = snapshot_partition(6, 3)
        assert a.owned == ((0, 1), (2, 3), (4, 5))

    def test_owner_map(self):
        a = snapshot_partition(6, 3)
        np.testing.assert_array_equal(a.owner_map(), [0, 0, 1, 1, 2, 2])

    def test_owner_of(self):
        a = snapshot_partition(6, 3)
        assert a.owner_of(3) == 1
        with pytest.raises(PartitionError):
            a.owner_of(6)

    def test_more_ranks_than_timesteps(self):
        a = snapshot_partition(2, 4)
        assert a.owned[2] == () and a.owned[3] == ()
        a.validate()

    def test_validate_catches_double_assignment(self):
        bad = TimestepAssignment(((0, 1), (1,)), 2)
        with pytest.raises(PartitionError):
            bad.validate()

    def test_validate_catches_gap(self):
        bad = TimestepAssignment(((0,), ()), 2)
        with pytest.raises(PartitionError):
            bad.validate()


class TestBlockwisePartition:
    def test_paper_fig3b_layout(self):
        # T=12, P=3, nb=2: within each 6-step block, 2 steps per rank
        a = blockwise_snapshot_partition(12, 3, 2)
        assert a.owned[0] == (0, 1, 6, 7)
        assert a.owned[1] == (2, 3, 8, 9)
        assert a.owned[2] == (4, 5, 10, 11)

    def test_single_block_equals_plain(self):
        plain = snapshot_partition(8, 4)
        block = blockwise_snapshot_partition(8, 4, 1)
        assert plain.owned == block.owned

    def test_block_ranges(self):
        assert block_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_block_ranges_invalid(self):
        with pytest.raises(PartitionError):
            block_ranges(4, 0)
        with pytest.raises(PartitionError):
            block_ranges(4, 8)

    @given(st.integers(1, 40), st.integers(1, 8), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_always_valid_cover(self, t, p, nb):
        nb = min(nb, t)
        a = blockwise_snapshot_partition(t, p, nb)
        a.validate()
        # within each block every rank's steps are contiguous
        for lo, hi in block_ranges(t, nb):
            for steps in a.owned:
                inside = [s for s in steps if lo <= s < hi]
                if inside:
                    assert inside == list(range(min(inside),
                                                max(inside) + 1))


class TestVertexChunks:
    def test_uniform(self):
        vc = VertexChunks.uniform(10, 3)
        assert vc.ranges == ((0, 4), (4, 7), (7, 10))
        assert vc.size(0) == 4
        assert vc.slice_of(1) == slice(4, 7)

    def test_owner_array(self):
        vc = VertexChunks.uniform(5, 2)
        np.testing.assert_array_equal(vc.owner_array(), [0, 0, 0, 1, 1])
