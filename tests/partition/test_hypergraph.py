"""Tests for the multilevel hypergraph partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.graph import evolving_dtdg
from repro.partition import (Hypergraph, build_gcn_hypergraph,
                             connectivity_cost, partition_hypergraph)


def two_cliques_hypergraph():
    """Two dense 8-cell communities bridged by one net — the canonical
    easy instance: a good partitioner cuts only the bridge."""
    nets = []
    for base in (0, 8):
        for i in range(8):
            for j in range(i + 1, 8):
                nets.append(np.array([base + i, base + j]))
    nets.append(np.array([0, 8]))  # bridge
    return Hypergraph(16, nets)


class TestHypergraphModel:
    def test_construction_defaults(self):
        hg = Hypergraph(4, [np.array([0, 1]), np.array([1, 2, 3])])
        assert hg.num_nets == 2
        assert hg.pins() == 5
        np.testing.assert_array_equal(hg.net_weights, [1.0, 1.0])

    def test_weight_length_validation(self):
        with pytest.raises(PartitionError):
            Hypergraph(3, [np.array([0, 1])], net_weights=np.ones(2))
        with pytest.raises(PartitionError):
            Hypergraph(3, [np.array([0, 1])], cell_weights=np.ones(2))

    def test_cell_to_nets(self):
        hg = Hypergraph(3, [np.array([0, 1]), np.array([1, 2])])
        inc = hg.cell_to_nets()
        assert inc[0] == [0] and inc[1] == [0, 1] and inc[2] == [1]

    def test_connectivity_cost(self):
        hg = Hypergraph(4, [np.array([0, 1]), np.array([2, 3]),
                            np.array([0, 3])])
        parts = np.array([0, 0, 1, 1])
        # nets 0 and 1 internal (λ=1), net 2 spans both (λ=2)
        assert connectivity_cost(hg, parts) == 1.0

    def test_connectivity_cost_weighted(self):
        hg = Hypergraph(2, [np.array([0, 1])], net_weights=np.array([5.0]))
        assert connectivity_cost(hg, np.array([0, 1])) == 5.0
        assert connectivity_cost(hg, np.array([0, 0])) == 0.0


class TestBuildGCNHypergraph:
    def test_nets_are_column_supports(self):
        dtdg = evolving_dtdg(30, 4, 60, churn=0.2, seed=0)
        hg = build_gcn_hypergraph(dtdg)
        assert hg.num_cells == 30
        # every net contains at least 2 cells (v plus a neighbor)
        for net in hg.nets:
            assert len(net) >= 2

    def test_net_contains_vertex_and_in_edges(self):
        from repro.graph import DTDG, GraphSnapshot
        snap = GraphSnapshot(5, [[0, 2], [1, 2], [3, 4]])
        hg = build_gcn_hypergraph(DTDG([snap]))
        as_sets = [set(n.tolist()) for n in hg.nets]
        assert {0, 1, 2} in as_sets   # column 2 support
        assert {3, 4} in as_sets      # column 4 support


class TestPartitionHypergraph:
    def test_two_communities_clean_cut(self):
        hg = two_cliques_hypergraph()
        parts = partition_hypergraph(hg, 2, seed=0)
        # balanced
        sizes = np.bincount(parts, minlength=2)
        assert abs(int(sizes[0]) - int(sizes[1])) <= 2
        # only the bridge net should be cut
        assert connectivity_cost(hg, parts) <= 3.0

    def test_single_part_trivial(self):
        hg = two_cliques_hypergraph()
        parts = partition_hypergraph(hg, 1)
        assert (parts == 0).all()

    def test_invalid_num_parts(self):
        hg = two_cliques_hypergraph()
        with pytest.raises(PartitionError):
            partition_hypergraph(hg, 0)
        with pytest.raises(PartitionError):
            partition_hypergraph(hg, 17)

    def test_balance_respected(self):
        dtdg = evolving_dtdg(120, 4, 400, churn=0.3, seed=1, skew=1.2)
        hg = build_gcn_hypergraph(dtdg)
        for p in (2, 4):
            parts = partition_hypergraph(hg, p, balance_eps=0.1, seed=0)
            loads = np.zeros(p)
            np.add.at(loads, parts, hg.cell_weights)
            assert loads.max() <= (1.12) * hg.cell_weights.sum() / p \
                + hg.cell_weights.max()

    def test_beats_random_partition(self):
        dtdg = evolving_dtdg(150, 4, 500, churn=0.3, seed=2, skew=1.0)
        hg = build_gcn_hypergraph(dtdg)
        rng = np.random.default_rng(0)
        random_parts = rng.integers(0, 4, size=hg.num_cells)
        smart_parts = partition_hypergraph(hg, 4, seed=0)
        assert connectivity_cost(hg, smart_parts) < \
            connectivity_cost(hg, random_parts)

    def test_volume_grows_with_parts(self):
        # the paper's core observation about vertex partitioning (§4.1)
        dtdg = evolving_dtdg(150, 4, 500, churn=0.3, seed=3, skew=1.0)
        hg = build_gcn_hypergraph(dtdg)
        costs = [connectivity_cost(hg, partition_hypergraph(hg, p, seed=0))
                 for p in (2, 4, 8)]
        assert costs[0] < costs[1] < costs[2]

    def test_deterministic_given_seed(self):
        hg = two_cliques_hypergraph()
        a = partition_hypergraph(hg, 2, seed=5)
        b = partition_hypergraph(hg, 2, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_all_parts_used(self):
        dtdg = evolving_dtdg(100, 3, 300, churn=0.4, seed=4)
        hg = build_gcn_hypergraph(dtdg)
        parts = partition_hypergraph(hg, 4, seed=0)
        assert set(np.unique(parts)) == {0, 1, 2, 3}

    @given(st.integers(2, 4))
    @settings(max_examples=8, deadline=None)
    def test_partition_always_valid(self, p):
        dtdg = evolving_dtdg(60, 3, 150, churn=0.5, seed=p)
        hg = build_gcn_hypergraph(dtdg)
        parts = partition_hypergraph(hg, p, seed=p)
        assert parts.shape == (hg.num_cells,)
        assert parts.min() >= 0 and parts.max() < p
