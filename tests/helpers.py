"""Shared test utilities: numerical gradient checking and tolerances."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor import Tensor


def numeric_grad(fn: Callable[[], Tensor], tensor: Tensor,
                 eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn().item()
        flat[i] = orig - eps
        down = fn().item()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                    rtol: float = 1e-5, atol: float = 1e-7) -> None:
    """Assert autograd gradients of scalar ``fn()`` match finite differences.

    ``fn`` must rebuild the graph from the given leaf tensors on each call.
    """
    for t in tensors:
        t.zero_grad()
    out = fn()
    out.backward()
    for idx, t in enumerate(tensors):
        assert t.grad is not None, f"tensor {idx} received no gradient"
        num = numeric_grad(fn, t)
        np.testing.assert_allclose(
            t.grad, num, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for tensor {idx}")
