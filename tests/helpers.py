"""Shared test utilities: numerical gradient checking and tolerances."""

from __future__ import annotations

import os
from typing import Callable, Sequence

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor.backend import available_backends


def all_backends_fixture():
    """A module-scoped autouse fixture that reruns the module once per
    available kernel backend, selected via ``REPRO_KERNEL_BACKEND`` so
    every matrix the module builds picks it up without signature
    changes.  Module scope keeps hypothesis's function-scoped-fixture
    health check quiet.  Use as::

        kernel_backend = all_backends_fixture()
    """

    @pytest.fixture(scope="module", autouse=True,
                    params=available_backends())
    def kernel_backend(request):
        old = os.environ.get("REPRO_KERNEL_BACKEND")
        os.environ["REPRO_KERNEL_BACKEND"] = request.param
        yield request.param
        if old is None:
            os.environ.pop("REPRO_KERNEL_BACKEND", None)
        else:
            os.environ["REPRO_KERNEL_BACKEND"] = old

    return kernel_backend


def numeric_grad(fn: Callable[[], Tensor], tensor: Tensor,
                 eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn().item()
        flat[i] = orig - eps
        down = fn().item()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                    rtol: float = 1e-5, atol: float = 1e-7) -> None:
    """Assert autograd gradients of scalar ``fn()`` match finite differences.

    ``fn`` must rebuild the graph from the given leaf tensors on each call.
    """
    for t in tensors:
        t.zero_grad()
    out = fn()
    out.backward()
    for idx, t in enumerate(tensors):
        assert t.grad is not None, f"tensor {idx} received no gradient"
        num = numeric_grad(fn, t)
        np.testing.assert_allclose(
            t.grad, num, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for tensor {idx}")
