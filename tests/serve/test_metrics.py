"""LatencyTracker reservoir: bounded memory, exact-below-capacity."""

import numpy as np
import pytest

from repro.serve.metrics import LatencyTracker


class TestLatencyReservoir:
    def test_exact_below_reservoir_size(self):
        tracker = LatencyTracker(reservoir_size=128)
        rng = np.random.default_rng(0)
        samples = rng.exponential(5.0, size=100)
        for s in samples:
            tracker.record(s)
        for q in (50.0, 95.0, 99.0):
            assert tracker.percentile(q) == pytest.approx(
                float(np.percentile(samples, q)))
        assert tracker.mean == pytest.approx(float(samples.mean()))
        assert tracker.count == 100
        assert tracker.sampled == 100

    def test_memory_stays_bounded_on_long_streams(self):
        tracker = LatencyTracker(reservoir_size=256)
        for i in range(50000):
            tracker.record(float(i % 97))
        assert tracker.sampled == 256
        assert tracker.count == 50000

    def test_percentiles_within_tolerance_beyond_capacity(self):
        """Reservoir estimates track the true percentiles of a long
        stream (deterministic seeded sampling — no flaky tolerance)."""
        tracker = LatencyTracker(reservoir_size=2048, seed=7)
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=1.0, sigma=0.6, size=40000)
        for s in samples:
            tracker.record(s)
        for q in (50.0, 95.0, 99.0):
            true = float(np.percentile(samples, q))
            got = tracker.percentile(q)
            assert abs(got - true) / true < 0.15, (q, got, true)
        # the mean is exact regardless of sampling
        assert tracker.mean == pytest.approx(float(samples.mean()))

    def test_empty_tracker_reports_nan(self):
        tracker = LatencyTracker()
        assert np.isnan(tracker.p50)
        assert np.isnan(tracker.mean)
        assert tracker.count == 0

    def test_bad_reservoir_size_rejected(self):
        with pytest.raises(ValueError):
            LatencyTracker(reservoir_size=0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_record_rejected(self, bad):
        tracker = LatencyTracker()
        with pytest.raises(ValueError):
            tracker.record(bad)
        assert tracker.count == 0

    def test_server_stats_use_tracker(self):
        """End-to-end: a server's latency stats flow through the
        reservoir without interface changes."""
        from repro.graph import AMLSimConfig, generate_amlsim
        from repro.models import build_model
        from repro.serve import ModelServer

        dtdg = generate_amlsim(AMLSimConfig(
            num_accounts=50, num_timesteps=4, background_per_step=80,
            seed=4)).dtdg
        model = build_model("cdgcn", in_features=2, seed=0)
        server = ModelServer(model, dtdg[0])
        for _ in range(5):
            server.submit_link(1, 2)
        server.drain()
        stats = server.stats()
        assert stats.latency_p95_ms >= stats.latency_p50_ms >= 0.0
        assert server.latency.count == 5

    def test_stats_counters_are_a_snapshot(self):
        """Regression: stats() must copy the counters, not alias the
        live object — later traffic cannot mutate an old snapshot."""
        from repro.graph import AMLSimConfig, generate_amlsim
        from repro.models import build_model
        from repro.serve import ModelServer

        dtdg = generate_amlsim(AMLSimConfig(
            num_accounts=50, num_timesteps=4, background_per_step=80,
            seed=4)).dtdg
        model = build_model("cdgcn", in_features=2, seed=0)
        server = ModelServer(model, dtdg[0])
        for _ in range(3):
            server.submit_link(1, 2)
        server.drain()
        before = server.stats()
        frozen = before.counters.queries_completed
        assert frozen == 3

        for _ in range(4):
            server.submit_link(2, 3)
        server.drain()
        assert before.counters.queries_completed == frozen
        assert server.stats().counters.queries_completed == 7
        assert before.counters is not server.counters
