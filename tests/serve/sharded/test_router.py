"""Router behavior: request surface, replica routing, rebalancing."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import Linear
from repro.serve import (EdgeEvent, ModelServer, ShardedServer,
                         events_between)
from repro.serve.sharded import ShardPlan


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float) -> None:
        self.t += dt


@pytest.fixture(scope="module")
def world():
    config = AMLSimConfig(num_accounts=120, num_timesteps=8,
                          background_per_step=200,
                          partner_persistence=0.8, num_fan_out=2,
                          num_fan_in=2, num_cycles=1, num_scatter_gather=1,
                          pattern_size=4, num_branches=4,
                          branch_locality=0.7, seed=5)
    return generate_amlsim(config)


def make_server(world, **kwargs):
    model = build_model("cdgcn", in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    kwargs.setdefault("num_shards", 4)
    return ShardedServer(model, world.dtdg[0], fraud_head=fraud, **kwargs)


class TestRequestSurface:
    def test_mirrors_model_server_api(self, world):
        server = make_server(world, max_batch_size=4)
        q1 = server.submit_link(0, 119)
        q2 = server.submit_fraud(3)
        assert not q1.done and not q2.done
        server.flush()
        assert q1.done and q2.done
        assert 0.0 <= q1.result <= 1.0
        assert 0.0 <= q2.result <= 1.0

    def test_batch_size_triggers_flush(self, world):
        server = make_server(world, max_batch_size=2)
        a = server.submit_link(0, 1)
        b = server.submit_link(2, 110)   # second submit fills the batch
        assert a.done and b.done

    def test_tick_honors_latency_budget(self, world):
        clock = FakeClock()
        server = make_server(world, max_batch_size=64,
                             flush_latency_ms=5.0, clock=clock)
        server.submit_fraud(7)
        assert server.tick() == 0      # budget not yet exceeded
        clock.tick(0.006)
        assert server.tick() == 1

    def test_rejects_bad_vertices_and_configs(self, world):
        server = make_server(world)
        with pytest.raises(ConfigError):
            server.submit_link(-1, 3)
        with pytest.raises(ConfigError):
            server.submit_fraud(10_000)
        with pytest.raises(ConfigError):
            make_server(world, num_shards=None)
        with pytest.raises(ConfigError):
            make_server(world, replicas=0)

    def test_stats_surface(self, world):
        server = make_server(world, max_batch_size=2)
        server.ingest_events([EdgeEvent(0, 100), EdgeEvent(1, 101)])
        server.submit_fraud(0)
        server.submit_fraud(100)
        server.drain()
        stats = server.stats()
        assert stats.counters.queries_completed == 2
        assert stats.counters.events_ingested == 2
        assert stats.counters.cross_shard_events >= 1
        assert stats.num_shards == 4
        assert len(stats.per_shard_queries) == 4
        assert stats.load_skew >= 1.0
        assert stats.simulated_wall_s > 0
        assert stats.aggregate_qps > 0


class TestReplicaRouting:
    def test_least_loaded_spreads_queries(self, world):
        server = make_server(world, num_shards=1, replicas=2,
                             max_batch_size=1)
        rs = server.shards[0]
        w0, w1 = rs.workers
        # force asymmetric load on replica 0, next flush must pick 1
        w0.busy_s += 1.0
        assert rs.least_loaded() is w1
        before = w1.queries_scored
        server.submit_fraud(3)
        assert w1.queries_scored == before + 1

    def test_writes_fan_out_to_all_replicas(self, world):
        server = make_server(world, num_shards=2, replicas=2)
        dtdg = world.dtdg
        server.ingest_events(events_between(dtdg[0], dtdg[1]))
        server.advance_time()
        for rs in server.shards:
            assert all(w.deltas_applied == 1 for w in rs.workers)
            steps = {w.engine.steps for w in rs.workers}
            assert len(steps) == 1


class TestRebalancing:
    def _drive_skewed(self, server, hot, n_queries=300):
        for i in range(n_queries):
            server.submit_fraud(int(hot[i % len(hot)]))
        server.drain()

    def test_skew_triggers_rebalance_at_boundary(self, world):
        server = make_server(world, rebalance_skew=1.5,
                             rebalance_min_queries=100)
        n = world.dtdg.num_vertices
        hot = server.plan.block(0)[:5]   # hammer shard 0 only
        self._drive_skewed(server, hot)
        assert server.observed_skew() > 1.5
        old_sizes = server.plan.block_sizes().copy()
        server.advance_time()
        assert server.counters.rebalances == 1
        # load counters reset and the hot block shrank
        assert server._vertex_load.sum() == 0
        new_sizes = server.plan.block_sizes()
        assert new_sizes[0] < old_sizes[0]
        assert (new_sizes > 0).all()
        assert np.sort(np.concatenate(
            [server.plan.block(s) for s in range(4)])).tolist() == \
            list(range(n))

    def test_rebalance_preserves_exactness(self, world):
        dtdg = world.dtdg
        model = build_model("cdgcn", in_features=2, seed=0)
        single = ModelServer(model, dtdg[0], incremental=False)
        server = make_server(world, rebalance_skew=1.5,
                             rebalance_min_queries=50)
        hot = server.plan.block(0)[:3]
        for t in range(1, 6):
            single.advance_time()
            server.advance_time()
            events = events_between(dtdg[t - 1], dtdg[t])
            single.ingest_events(events)
            server.ingest_events(events)
            self._drive_skewed(server, hot, n_queries=80)
            single.cache.invalidate_all()
            single.engine.refresh()
            np.testing.assert_allclose(server.gathered_embeddings(),
                                       single.engine.embeddings,
                                       atol=1e-6)
        assert server.counters.rebalances >= 1

    def test_balanced_load_never_rebalances(self, world):
        server = make_server(world, rebalance_skew=1.5,
                             rebalance_min_queries=50)
        n = world.dtdg.num_vertices
        for v in range(n):
            server.submit_fraud(v)
        server.drain()
        server.advance_time()
        assert server.counters.rebalances == 0

    def test_explicit_rebalance_validates_plan(self, world):
        server = make_server(world)
        with pytest.raises(ConfigError):
            server.rebalance(ShardPlan.uniform(world.dtdg.num_vertices, 2))
        with pytest.raises(ConfigError):
            server.rebalance(ShardPlan.uniform(7, 4))


class TestCheckpointBoot:
    def test_from_checkpoint(self, world, tmp_path):
        from repro.train import save_model_checkpoint
        model = build_model("cdgcn", in_features=2, seed=0)
        fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
        path = str(tmp_path / "ckpt.npz")
        save_model_checkpoint(path, model, "cdgcn", fraud_head=fraud)
        booted = ShardedServer.from_checkpoint(path, world.dtdg[0],
                                               num_shards=3)
        direct = make_server(world, num_shards=3)
        a = booted.submit_fraud(5)
        booted.drain()
        b = direct.submit_fraud(5)
        direct.drain()
        assert a.result == pytest.approx(b.result, abs=1e-9)
