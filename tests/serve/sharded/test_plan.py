"""Shard plans, halo geometry, and the delta splitter."""

import numpy as np
import pytest

from repro.errors import DatasetError, PartitionError
from repro.graph import GraphSnapshot
from repro.graph.diff import diff_snapshots, split_diff_by_blocks
from repro.partition import (VertexChunks, hybrid_partition,
                             random_vertex_partition)
from repro.serve.sharded import ShardPlan
from repro.serve.sharded.plan import block_distances, relax_distances


class TestShardPlan:
    def test_uniform_blocks_partition_the_vertex_set(self):
        plan = ShardPlan.uniform(10, 3)
        got = np.concatenate([plan.block(s) for s in range(3)])
        np.testing.assert_array_equal(np.sort(got), np.arange(10))
        assert plan.imbalance() <= 4 / 3 + 1e-9

    def test_from_partition_uses_original_ids(self):
        vp = random_vertex_partition(20, 4, seed=3)
        plan = ShardPlan.from_partition(vp)
        np.testing.assert_array_equal(plan.owner, vp.assignment)

    def test_from_hybrid_uses_row_chunks(self):
        h = hybrid_partition(num_timesteps=6, num_vertices=12, num_ranks=4,
                             group_size=2)
        plan = ShardPlan.from_hybrid(h)
        assert plan.num_shards == 2
        assert plan.num_vertices == 12

    def test_weighted_balances_cumulative_load(self):
        loads = np.zeros(100)
        loads[:10] = 30.0  # hot prefix
        plan = ShardPlan.weighted(loads, 4)
        sizes = plan.block_sizes()
        assert (sizes > 0).all()
        # the hot prefix is confined to small leading shards while the
        # cold tail aggregates into one big block
        assert sizes[0] < sizes[-1]
        per_shard = np.bincount(plan.owner, weights=loads, minlength=4)
        assert per_shard.max() / per_shard.mean() < 2.0

    def test_weighted_never_produces_empty_shards(self):
        # a single scorching-hot vertex collapses every load quantile
        # onto one cut point; the plan must still cover all shards
        loads = np.zeros(1000)
        loads[0] = 5000.0
        plan = ShardPlan.weighted(loads, 4)
        assert (plan.block_sizes() > 0).all()
        assert plan.block_sizes()[0] == 1   # the hot vertex is isolated
        with pytest.raises(PartitionError):
            ShardPlan.weighted(np.ones(3), 4)

    def test_rejects_bad_owner_arrays(self):
        with pytest.raises(PartitionError):
            ShardPlan(owner=np.array([0, 1, 2]), num_shards=2)
        with pytest.raises(PartitionError):
            ShardPlan(owner=np.array([], dtype=np.int64), num_shards=1)


class TestHaloGeometry:
    #  path graph 0-1-2-3-4-5
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]])

    def test_block_distances_truncated(self):
        dist = block_distances(6, self.edges, np.array([0, 1]), max_dist=2)
        np.testing.assert_array_equal(dist, [0, 0, 1, 2, 3, 3])

    def test_vertex_chunks_fringe(self):
        chunks = VertexChunks.uniform(6, 3)  # blocks {0,1} {2,3} {4,5}
        np.testing.assert_array_equal(chunks.fringe(self.edges, 0, hops=1),
                                      [2])
        np.testing.assert_array_equal(chunks.fringe(self.edges, 1, hops=1),
                                      [1, 4])
        np.testing.assert_array_equal(chunks.fringe(self.edges, 0, hops=2),
                                      [2, 3])
        assert len(chunks.fringe(self.edges, 0, hops=0)) == 0
        with pytest.raises(PartitionError):
            chunks.fringe(self.edges, 0, hops=-1)

    def test_relax_distances_lowers_after_addition(self):
        dist = block_distances(6, self.edges, np.array([0, 1]), max_dist=2)
        # new edge (1, 5) pulls 5 and 4 closer to the block
        new_edges = np.concatenate([self.edges, [[1, 5]]], axis=0)
        relax_distances(dist, new_edges, np.array([1, 4, 5]), max_dist=2)
        assert dist[5] == 1
        assert dist[4] == 2
        # untouched entries keep their values
        assert dist[2] == 1 and dist[3] == 2

    def test_relax_never_raises_distances(self):
        dist = block_distances(6, self.edges, np.array([0, 1]), max_dist=2)
        before = dist.copy()
        relax_distances(dist, self.edges, np.arange(6), max_dist=2)
        assert (dist <= before).all()


class TestSplitDiffByBlocks:
    def make(self):
        prev = GraphSnapshot(6, np.array([[0, 1], [2, 3], [4, 5]]))
        curr = GraphSnapshot(6, np.array([[0, 1], [0, 3], [4, 5], [5, 2]]))
        return prev, curr, diff_snapshots(prev, curr)

    def test_blocks_receive_incident_edges(self):
        prev, curr, diff = self.make()
        owners = np.array([0, 0, 1, 1, 2, 2])
        subs = split_diff_by_blocks(diff, curr, owners)
        assert len(subs) == 3
        # (2,3) removed: incident to block 1 only
        assert len(subs[1].removed) == 1
        assert len(subs[0].removed) == 0
        # (0,3) added spans blocks 0 and 1 → appears in both
        assert [0, 3] in subs[0].added.tolist()
        assert [0, 3] in subs[1].added.tolist()
        # (5,2) added spans blocks 1 and 2
        assert [5, 2] in subs[1].added.tolist()
        assert [5, 2] in subs[2].added.tolist()

    def test_union_covers_the_full_delta(self):
        prev, curr, diff = self.make()
        owners = np.array([0, 0, 1, 1, 2, 2])
        subs = split_diff_by_blocks(diff, curr, owners)
        added = {tuple(e) for s in subs for e in s.added.tolist()}
        removed = {tuple(e) for s in subs for e in s.removed.tolist()}
        assert added == {tuple(e) for e in diff.added.tolist()}
        assert removed == {tuple(e) for e in diff.removed.tolist()}
        # cross-block duplication makes fan-out at least the full delta
        assert sum(s.payload_nbytes for s in subs) >= diff.payload_nbytes

    def test_values_follow_incidence(self):
        prev, curr, diff = self.make()
        owners = np.array([0, 0, 1, 1, 2, 2])
        subs = split_diff_by_blocks(diff, curr, owners)
        # block 0's incident current edges: (0,1), (0,3)
        assert len(subs[0].values) == 2

    def test_owner_array_must_cover_vertices(self):
        prev, curr, diff = self.make()
        with pytest.raises(DatasetError):
            split_diff_by_blocks(diff, curr, np.array([0, 1]))
