"""The sharded tier's exactness contract (acceptance criterion).

Sharded incremental inference over N=4 shards must equal a single-worker
full recompute to atol 1e-6 while a 20-timestep AML-Sim event stream
replays — for every supported model — including events whose k-hop
cone crosses shard boundaries (the planted laundering typologies ignore
branch structure, so cross-shard cones occur throughout the stream).
"""

import numpy as np
import pytest

from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import MODEL_NAMES, build_model
from repro.nn.linear import Linear
from repro.serve import ModelServer, ShardedServer, events_between
from repro.serve.sharded import ShardPlan


@pytest.fixture(scope="module")
def stream20():
    """A 20-timestep AML-Sim dynamic graph with regional branches."""
    config = AMLSimConfig(num_accounts=160, num_timesteps=20,
                          background_per_step=260,
                          partner_persistence=0.85, num_fan_out=3,
                          num_fan_in=3, num_cycles=2, num_scatter_gather=2,
                          pattern_size=5, num_branches=4,
                          branch_locality=0.7, seed=11)
    return generate_amlsim(config).dtdg


def _servers(name, dtdg, num_shards=4, **kwargs):
    model = build_model(name, in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(7))
    single = ModelServer(model, dtdg[0], fraud_head=fraud,
                         incremental=False)
    model2 = build_model(name, in_features=2, seed=0)
    fraud2 = Linear(model2.embed_dim, 2, np.random.default_rng(7))
    sharded = ShardedServer(model2, dtdg[0], num_shards=num_shards,
                            fraud_head=fraud2, **kwargs)
    return single, sharded


def _reference_embeddings(single):
    single.cache.invalidate_all()
    single.engine.refresh()
    return single.engine.embeddings


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_sharded_equals_full_recompute_over_stream(stream20, name):
    """Acceptance: replay 20 timesteps as micro-batched edge events
    against N=4 shards; after every batch the gathered owned rows must
    equal the single-worker full recompute to atol 1e-6."""
    dtdg = stream20
    single, sharded = _servers(name, dtdg)
    cross_cone_batches = 0
    for t in range(1, dtdg.num_timesteps):
        single.advance_time()
        sharded.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        chunk = max(1, len(events) // 3)
        for i in range(0, len(events), chunk):
            batch = events[i:i + chunk]
            single.ingest_events(batch)
            before = sharded.counters.halo_dirty_rows
            sharded.ingest_events(batch)
            if sharded.counters.halo_dirty_rows > before:
                cross_cone_batches += 1
            got = sharded.gathered_embeddings()
            want = _reference_embeddings(single)
            np.testing.assert_allclose(
                got, want, atol=1e-6,
                err_msg=f"{name} diverged at t={t}, batch {i // chunk}")
    # the stream must actually have exercised cross-shard cones
    assert cross_cone_batches > 10
    assert sharded.exchange.traffic.boundary_syncs == dtdg.num_timesteps


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_sharded_queries_match_single_worker(stream20, name):
    """Link and fraud scores agree with the single-worker server,
    including link queries whose endpoints live on different shards."""
    dtdg = stream20
    single, sharded = _servers(name, dtdg)
    n = dtdg.num_vertices
    worst = 0.0
    for t in range(1, 8):
        single.advance_time()
        sharded.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        single.ingest_events(events)
        sharded.ingest_events(events)
        # endpoints chosen from different contiguous blocks → remote row
        # fetches on the sharded tier
        pairs = [(3, n - 5), (n // 2, 7), (n - 1, n // 3), (11, 13)]
        for u, v in pairs:
            a = single.submit_link(u, v)
            b = sharded.submit_link(u, v)
            single.drain()
            sharded.drain()
            worst = max(worst, abs(a.result - b.result))
        a = single.submit_fraud(t)
        b = sharded.submit_fraud(t)
        single.drain()
        sharded.drain()
        worst = max(worst, abs(a.result - b.result))
    assert worst < 1e-6
    assert sharded.counters.remote_row_fetches > 0


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_unflushed_boundaries_stay_exact(stream20, name):
    """Regression: with R=2 replicas only the serving replica refreshes
    at flush time; crossing a timestep boundary with dirty rows still
    pending on the idle replica must not poison its promoted carries
    (every replica settles in ``begin_advance``)."""
    dtdg = stream20
    single, sharded = _servers(name, dtdg, num_shards=3, replicas=2)
    for t in range(1, 10):
        single.advance_time()
        sharded.advance_time()
        # ingest the whole transition without a single flush
        events = events_between(dtdg[t - 1], dtdg[t])
        single.ingest_events(events)
        sharded.ingest_events(events)
    single.advance_time()
    sharded.advance_time()
    want = _reference_embeddings(single)
    for s in range(3):
        block = sharded.plan.block(s)
        for w in sharded.shards[s].workers:
            w.refresh()
            np.testing.assert_allclose(w.engine.embeddings[block],
                                       want[block], atol=1e-6,
                                       err_msg=f"{name} replica "
                                               f"{w.replica_id} stale")


def test_sharded_exact_under_hypergraph_plan(stream20):
    """Exactness holds for a non-contiguous (§4.1 hypergraph) plan."""
    from repro.partition import hypergraph_vertex_partition
    dtdg = stream20
    vp = hypergraph_vertex_partition(dtdg.slice_time(0, 4), 4, seed=0)
    plan = ShardPlan.from_partition(vp)
    model = build_model("cdgcn", in_features=2, seed=0)
    single = ModelServer(model, dtdg[0], incremental=False)
    model2 = build_model("cdgcn", in_features=2, seed=0)
    sharded = ShardedServer(model2, dtdg[0], plan=plan)
    for t in range(1, 6):
        single.advance_time()
        sharded.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        single.ingest_events(events)
        sharded.ingest_events(events)
        np.testing.assert_allclose(sharded.gathered_embeddings(),
                                   _reference_embeddings(single),
                                   atol=1e-6)


def test_sharded_exact_with_replicas(stream20):
    """R=2 replicas stay mirrors of each other and of the reference."""
    dtdg = stream20
    single, sharded = _servers("cdgcn", dtdg, num_shards=2, replicas=2)
    for t in range(1, 5):
        single.advance_time()
        sharded.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        single.ingest_events(events)
        sharded.ingest_events(events)
        want = _reference_embeddings(single)
        np.testing.assert_allclose(sharded.gathered_embeddings(), want,
                                   atol=1e-6)
        for s in range(2):
            rs = sharded.shards[s]
            block = sharded.plan.block(s)
            for w in rs.workers:
                w.refresh()
                np.testing.assert_allclose(
                    w.engine.embeddings[block], want[block], atol=1e-6)
