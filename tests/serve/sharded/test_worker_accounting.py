"""Worker time accounting: the clocks the scaling benches trust.

Every simulated-parallel wall number in this repo reduces to two
primitives — :meth:`ShardWorker._charge` accumulating busy seconds and
:meth:`ReplicaSet.least_loaded` routing reads by them — so both get
regression coverage of their exact contracts: charges are monotone and
additive under an injected clock, and load ties break deterministically
on replica id.
"""

import numpy as np
import pytest

from repro.graph.snapshot import GraphSnapshot
from repro.models import build_model
from repro.serve.engine import derive_serving_features
from repro.serve.sharded.worker import ReplicaSet, ShardWorker


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float) -> None:
        self.t += dt


@pytest.fixture(scope="module")
def snapshot():
    rng = np.random.default_rng(3)
    edges = rng.integers(0, 24, size=(80, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    return GraphSnapshot(24, edges, np.ones(len(edges)))


def make_worker(snapshot, replica_id, clock):
    model = build_model("cdgcn", in_features=2, seed=0)
    features, dinv = derive_serving_features(snapshot)
    return ShardWorker(0, replica_id, model, snapshot,
                       np.arange(12, dtype=np.int64),
                       link_head=None, fraud_head=None, k_hops=2,
                       features=features, dinv=dinv, maintainer=None,
                       clock=clock)


class TestCharge:
    def test_charge_accumulates_clock_deltas_exactly(self, snapshot):
        clock = FakeClock()
        worker = make_worker(snapshot, 0, clock)
        base = worker.busy_s
        t0 = clock()
        clock.tick(0.25)
        worker._charge(t0)
        assert worker.busy_s == base + 0.25
        t1 = clock()
        clock.tick(0.5)
        worker._charge(t1)
        assert worker.busy_s == base + 0.75

    def test_busy_never_decreases_across_operations(self, snapshot):
        # every clock() read advances time, so any charged span is
        # strictly positive and busy_s must climb monotonically
        class AutoClock:
            t = 0.0

            def __call__(self) -> float:
                AutoClock.t += 0.001
                return AutoClock.t

        worker = make_worker(snapshot, 0, AutoClock())
        features, dinv = derive_serving_features(snapshot)
        seen = [worker.busy_s]
        for op in (lambda: worker.begin_advance(snapshot, features, dinv),
                   worker.finish_advance,
                   worker.refresh,
                   lambda: worker.embedding_rows(
                       np.arange(4, dtype=np.int64))):
            op()
            seen.append(worker.busy_s)
            assert seen[-1] >= seen[-2]
        assert worker.busy_s > 0.0

    def test_zero_elapsed_charges_zero(self, snapshot):
        clock = FakeClock()
        worker = make_worker(snapshot, 0, clock)
        before = worker.busy_s
        worker._charge(clock())   # no tick between t0 and charge
        assert worker.busy_s == before


class TestLeastLoaded:
    def test_tie_breaks_on_lowest_replica_id(self, snapshot):
        clock = FakeClock()
        workers = [make_worker(snapshot, r, clock) for r in (2, 0, 1)]
        for w in workers:
            w.busy_s = 1.0       # exact three-way tie
        replica_set = ReplicaSet(workers)
        assert replica_set.least_loaded().replica_id == 0
        # deterministic: repeated calls never alternate
        assert replica_set.least_loaded() is replica_set.least_loaded()

    def test_prefers_strictly_less_loaded_replica(self, snapshot):
        clock = FakeClock()
        workers = [make_worker(snapshot, r, clock) for r in range(3)]
        workers[0].busy_s = 2.0
        workers[1].busy_s = 0.5
        workers[2].busy_s = 1.0
        replica_set = ReplicaSet(workers)
        assert replica_set.least_loaded().replica_id == 1
        # the routed replica accrues load and the choice moves on
        workers[1].busy_s = 5.0
        assert replica_set.least_loaded().replica_id == 2
