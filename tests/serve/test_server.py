"""Tests for the batched model server (queue policy, scoring, stats)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import EdgeScorer, Linear
from repro.serve import EdgeEvent, ModelServer, events_between
from repro.train import save_model_checkpoint


class FakeClock:
    """Deterministic injectable clock (seconds)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def world():
    config = AMLSimConfig(num_accounts=80, num_timesteps=6,
                          background_per_step=120,
                          partner_persistence=0.8, num_fan_out=2,
                          num_fan_in=2, num_cycles=1, num_scatter_gather=1,
                          pattern_size=4, seed=5)
    sim = generate_amlsim(config)
    model = build_model("cdgcn", in_features=2, seed=0)
    rng = np.random.default_rng(1)
    return sim, model, EdgeScorer(model.embed_dim, 2, rng), \
        Linear(model.embed_dim, 2, rng)


def make_server(world, **kwargs):
    sim, model, link_head, fraud_head = world
    kwargs.setdefault("link_head", link_head)
    kwargs.setdefault("fraud_head", fraud_head)
    return ModelServer(model, sim.dtdg[0], **kwargs)


class TestQueue:
    def test_flush_on_max_batch(self, world):
        server = make_server(world, max_batch_size=4)
        queries = [server.submit_link(0, 1) for _ in range(3)]
        assert not any(q.done for q in queries)
        queries.append(server.submit_link(1, 2))
        assert all(q.done for q in queries)
        assert server.counters.batches_flushed == 1

    def test_tick_respects_latency_budget(self, world):
        clock = FakeClock()
        server = make_server(world, max_batch_size=100,
                             flush_latency_ms=5.0, clock=clock)
        q = server.submit_fraud(3)
        clock.tick(0.004)
        assert server.tick() == 0 and not q.done
        clock.tick(0.002)  # 6 ms > 5 ms budget
        assert server.tick() == 1 and q.done

    def test_drain_empties_queue(self, world):
        server = make_server(world, max_batch_size=100)
        for i in range(10):
            server.submit_fraud(i)
        assert server.drain() == 10
        assert server.counters.queries_completed == 10

    def test_oversized_burst_drains_in_chunks(self, world):
        server = make_server(world, max_batch_size=4)
        done = [server.submit_fraud(i % 8) for i in range(7)]
        server.submit_fraud(0)  # 8th fills the first batch, all flush
        assert all(q.done for q in done)
        assert server.counters.batches_flushed == 2


class TestScoring:
    def test_scores_are_probabilities(self, world):
        server = make_server(world, max_batch_size=2)
        a = server.submit_link(0, 1)
        b = server.submit_fraud(2)
        assert 0.0 <= a.result <= 1.0
        assert 0.0 <= b.result <= 1.0
        assert a.latency_ms >= 0.0

    def test_link_without_head_uses_dot_product(self, world):
        server = make_server(world, link_head=None, max_batch_size=1)
        q = server.submit_link(0, 1)
        assert 0.0 <= q.result <= 1.0

    def test_fraud_without_head_rejected(self, world):
        server = make_server(world, fraud_head=None)
        with pytest.raises(ConfigError):
            server.submit_fraud(0)

    def test_out_of_range_query_ids_rejected_at_submit(self, world):
        """Negative ids would silently score the wrong vertex and big
        ones would kill the whole batch at flush time."""
        server = make_server(world, max_batch_size=10)
        n = server.engine.num_vertices
        with pytest.raises(ConfigError):
            server.submit_fraud(-1)
        with pytest.raises(ConfigError):
            server.submit_fraud(n)
        with pytest.raises(ConfigError):
            server.submit_link(0, n)
        ok = server.submit_link(0, 1)  # queue survived the rejections
        server.drain()
        assert ok.done

    def test_scores_follow_ingested_events(self, world):
        """Identical queries straddling an ingest see refreshed rows."""
        sim, model, _, _ = world
        server = make_server(world, max_batch_size=1)
        before = server.submit_link(0, 1).result
        events = [EdgeEvent(0, 1), EdgeEvent(0, 2), EdgeEvent(1, 0)]
        server.ingest_events(events)
        after = server.submit_link(0, 1).result
        assert before != after  # degree features of 0/1 changed


class TestIncrementalVsFull:
    def test_modes_agree_on_scores(self, world):
        sim = world[0]
        dtdg = sim.dtdg
        servers = [make_server(world, incremental=True, max_batch_size=3),
                   make_server(world, incremental=False, max_batch_size=3)]
        for t in range(1, dtdg.num_timesteps):
            events = events_between(dtdg[t - 1], dtdg[t])
            half = len(events) // 2
            for chunk in (events[:half], events[half:]):
                results = []
                for server in servers:
                    server.ingest_events(chunk)
                    qs = [server.submit_link(1, 2), server.submit_fraud(3),
                          server.submit_link(4, 0)]
                    server.drain()
                    results.append([q.result for q in qs])
                np.testing.assert_allclose(results[0], results[1],
                                           atol=1e-6)
            for server in servers:
                server.advance_time(dtdg[t])

    def test_incremental_recomputes_fewer_rows(self, world):
        sim = world[0]
        dtdg = sim.dtdg
        inc = make_server(world, incremental=True, max_batch_size=1)
        full = make_server(world, incremental=False, max_batch_size=1)
        events = events_between(dtdg[0], dtdg[1])[:4]
        for server in (inc, full):
            server.ingest_events(events)
            server.submit_fraud(0)
        assert inc.counters.rows_recomputed < full.counters.rows_recomputed
        assert inc.counters.rows_served_from_cache > 0
        assert full.counters.cache_hit_rate == 0.0


class TestStats:
    def test_counters_and_latency(self, world):
        clock = FakeClock()
        server = make_server(world, max_batch_size=2, clock=clock)
        server.ingest_events([EdgeEvent(1, 2)])
        server.submit_link(0, 1)
        clock.tick(0.010)
        server.submit_fraud(1)
        clock.tick(0.005)
        stats = server.stats()
        assert stats.counters.queries_completed == 2
        assert stats.counters.events_ingested == 1
        # first request waited 10 ms, second 0 ms
        assert stats.latency_p99_ms == pytest.approx(10.0, abs=0.5)
        assert stats.queries_per_second > 0
        assert stats.latency_p50_ms <= stats.latency_p95_ms \
            <= stats.latency_p99_ms
        assert len(stats.row()) == 6


class TestCheckpointBoot:
    def test_from_checkpoint_roundtrip(self, world, tmp_path):
        sim, model, link_head, fraud_head = world
        path = str(tmp_path / "ckpt.npz")
        save_model_checkpoint(path, model, "cdgcn", link_head=link_head,
                              fraud_head=fraud_head)
        booted = ModelServer.from_checkpoint(path, sim.dtdg[0],
                                             max_batch_size=1)
        direct = make_server(world, max_batch_size=1)
        assert booted.submit_link(0, 1).result == \
            pytest.approx(direct.submit_link(0, 1).result, abs=1e-9)
        assert booted.submit_fraud(2).result == \
            pytest.approx(direct.submit_fraud(2).result, abs=1e-9)
