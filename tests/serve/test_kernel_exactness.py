"""Kernel-layer exactness across the serving tiers (acceptance).

The serving engine, the sharded workers and the full-recompute
baseline all route ``Ã`` through the
:class:`~repro.graph.inc_laplacian.LaplacianMaintainer` and refresh
dirty rows with the row-sliced SpMM kernel.  These tests prove the
rewired hot path is bit-compatible (atol 1e-9; observed exact) with
the pre-PR full-rebuild path — for all three models — and that the
incremental tiers really do take the incremental code path rather than
falling back to rebuilds.
"""

import numpy as np
import pytest

from repro.graph import AMLSimConfig, generate_amlsim, normalized_laplacian
from repro.models import MODEL_NAMES, build_model
from repro.nn.linear import Linear
from repro.serve import ModelServer, ShardedServer, events_between


@pytest.fixture(scope="module")
def stream10():
    config = AMLSimConfig(num_accounts=140, num_timesteps=10,
                          background_per_step=240,
                          partner_persistence=0.85, num_fan_out=3,
                          num_fan_in=3, num_cycles=2, num_scatter_gather=2,
                          pattern_size=5, seed=23)
    return generate_amlsim(config).dtdg


def _replay(server, dtdg, batches=3):
    for t in range(1, dtdg.num_timesteps):
        server.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        chunk = max(1, len(events) // batches)
        for i in range(0, len(events), chunk):
            server.ingest_events(events[i:i + chunk])
            server.submit_link(i % server.num_vertices,
                               (i + 1) % server.num_vertices)
            server.flush()
    server.drain()


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_incremental_serving_matches_full_rebuild_path(stream10, name):
    """Maintainer + row-sliced refresh == full rebuild + full multiply
    (the pre-PR path, preserved as the ``incremental=False`` baseline)
    to atol 1e-9 over a streamed AML-Sim replay."""
    dtdg = stream10

    def boot(incremental):
        model = build_model(name, in_features=2, seed=0)
        fraud = Linear(model.embed_dim, 2, np.random.default_rng(7))
        return ModelServer(model, dtdg[0], fraud_head=fraud,
                           incremental=incremental)

    inc, full = boot(True), boot(False)
    _replay(inc, dtdg)
    _replay(full, dtdg)
    np.testing.assert_allclose(inc.engine.embeddings,
                               full.engine.embeddings, atol=1e-9)
    # the incremental tier really took the incremental operator path
    assert inc.engine.maintainer.incremental_updates > 0
    assert inc.engine.maintainer.fallbacks == 0
    # while the baseline rebuilt per commit, as the pre-PR path did
    assert full.engine.maintainer.incremental_updates == 0


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_sharded_workers_route_through_maintainer(stream10, name):
    """Every shard worker maintains its operator incrementally and the
    gathered embeddings match the single-worker full recompute to
    atol 1e-9."""
    dtdg = stream10
    model = build_model(name, in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(7))
    single = ModelServer(model, dtdg[0], fraud_head=fraud,
                         incremental=False)
    model2 = build_model(name, in_features=2, seed=0)
    fraud2 = Linear(model2.embed_dim, 2, np.random.default_rng(7))
    sharded = ShardedServer(model2, dtdg[0], num_shards=3,
                            fraud_head=fraud2)
    for t in range(1, dtdg.num_timesteps):
        single.advance_time()
        sharded.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        chunk = max(1, len(events) // 2)
        for i in range(0, len(events), chunk):
            batch = events[i:i + chunk]
            single.ingest_events(batch)
            sharded.ingest_events(batch)
            got = sharded.gathered_embeddings()
            single.cache.invalidate_all()
            single.engine.refresh()
            np.testing.assert_allclose(
                got, single.engine.embeddings, atol=1e-9,
                err_msg=f"{name} sharded diverged at t={t}")
    for s in range(sharded.num_shards):
        maintainer = sharded.worker(s).engine.maintainer
        assert maintainer.incremental_updates > 0
        assert maintainer.fallbacks == 0


def test_engine_full_aggregate_uses_maintained_operator(stream10):
    """The engine's full-multiply path reads the maintained Ã — which
    must equal a fresh Eq. 1 rebuild of the resident snapshot."""
    dtdg = stream10
    model = build_model("cdgcn", in_features=2, seed=0)
    server = ModelServer(model, dtdg[0])
    _replay(server, dtdg)
    resident = server.engine.resident
    got = server.engine.maintainer.laplacian.csr
    ref = normalized_laplacian(resident).csr
    np.testing.assert_array_equal(got.toarray(), ref.toarray())
