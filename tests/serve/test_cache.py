"""Tests for the embedding cache and k-hop dirty expansion."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import GraphSnapshot
from repro.serve import EmbeddingCache, expand_dirty


def snap(n, pairs):
    return GraphSnapshot(n, np.array(pairs, dtype=np.int64).reshape(-1, 2))


# a path graph 0-1-2-3-4-5 (directed edges i -> i+1)
PATH = snap(6, [[i, i + 1] for i in range(5)])


class TestExpandDirty:
    def test_zero_hops_returns_seeds(self):
        np.testing.assert_array_equal(
            expand_dirty(PATH, np.array([2]), 0), [2])

    def test_one_hop_is_undirected(self):
        # vertex 2 reaches 1 (in-edge) and 3 (out-edge)
        np.testing.assert_array_equal(
            expand_dirty(PATH, np.array([2]), 1), [1, 2, 3])

    def test_two_hops(self):
        np.testing.assert_array_equal(
            expand_dirty(PATH, np.array([2]), 2), [0, 1, 2, 3, 4])

    def test_hops_saturate(self):
        out = expand_dirty(PATH, np.array([0]), 50)
        np.testing.assert_array_equal(out, np.arange(6))

    def test_disconnected_component_untouched(self):
        g = snap(6, [[0, 1], [1, 2], [4, 5]])
        out = expand_dirty(g, np.array([0]), 10)
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_empty_seeds(self):
        assert len(expand_dirty(PATH, np.empty(0, dtype=np.int64), 3)) == 0

    def test_multiple_seeds_merge(self):
        out = expand_dirty(PATH, np.array([0, 5]), 1)
        np.testing.assert_array_equal(out, [0, 1, 4, 5])


class TestEmbeddingCache:
    def test_starts_fully_dirty(self):
        cache = EmbeddingCache(6, num_layers=2)
        assert cache.all_dirty
        np.testing.assert_array_equal(cache.clean(), np.arange(6))
        assert cache.num_dirty == 0

    def test_k_defaults_to_depth(self):
        assert EmbeddingCache(6, num_layers=3).k_hops == 3

    def test_too_small_k_rejected(self):
        with pytest.raises(ConfigError):
            EmbeddingCache(6, num_layers=2, k_hops=1)

    def test_invalidate_expands_k_hops(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2])

    def test_invalidations_accumulate(self):
        cache = EmbeddingCache(6, num_layers=1)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        cache.invalidate(PATH, np.array([5]))
        np.testing.assert_array_equal(cache.dirty, [0, 1, 4, 5])
        assert cache.invalidations == 2

    def test_embeddings_require_priming(self):
        cache = EmbeddingCache(4, num_layers=1)
        with pytest.raises(ConfigError):
            _ = cache.embeddings


class TestSeedDeduplication:
    """Repeated seeds within one tick are not re-walked (exact-safe:
    a repeat's reach can only grow through edges whose own endpoints
    are fresh seeds of the commit that added them)."""

    def test_repeated_seed_skipped(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        walks = cache.invalidations
        cache.invalidate(PATH, np.array([0]))   # same endpoint again
        assert cache.invalidations == walks     # no second walk
        assert cache.seeds_deduplicated == 1
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2])

    def test_duplicate_seeds_within_one_batch(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0, 0, 0, 3]))
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2, 3, 4, 5])

    def test_mixed_batch_walks_only_fresh_seeds(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        before = cache.rows_invalidated
        cache.invalidate(PATH, np.array([0, 5]))   # 0 repeats, 5 fresh
        assert cache.seeds_deduplicated == 1
        # only 5's neighborhood was walked
        assert cache.rows_invalidated - before == 3
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2, 3, 4, 5])

    def test_coverage_stays_exact_when_topology_grows(self):
        # edge (0, 4) lands between two invalidations of seed 0: its
        # endpoints are seeds of the adding commit, so the repeat skip
        # loses nothing
        cache = EmbeddingCache(6, num_layers=1)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        grown = snap(6, [[i, i + 1] for i in range(5)] + [[0, 4]])
        cache.invalidate(grown, np.array([0, 4]))
        assert 3 in cache.dirty and 5 in cache.dirty

    def test_clean_resets_dedup_window(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        assert cache.seeds_deduplicated == 0
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2])


class TestMarkDirty:
    def test_unions_without_walking(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.mark_dirty(np.array([4, 1]))
        np.testing.assert_array_equal(cache.dirty, [1, 4])

    def test_empty_rows_noop(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.mark_dirty(np.empty(0, dtype=np.int64))
        assert cache.num_dirty == 0
        assert cache.invalidations == 0


class TestLRUEviction:
    """Bounded-memory serving: ``max_rows`` caps the resident set by
    moving the least-recently-read rows to a lazy evicted set; a later
    read reloads them (dirty → recomputed before serving)."""

    def _cache(self, n=6, max_rows=3):
        cache = EmbeddingCache(n, num_layers=1, max_rows=max_rows)
        cache.clean()
        return cache

    def test_unbounded_cache_never_evicts(self):
        cache = EmbeddingCache(6, num_layers=1)
        cache.clean()
        cache.touch(np.array([0, 1]))
        assert cache.maybe_evict() == 0
        assert cache.evictions == 0

    def test_max_rows_validated(self):
        with pytest.raises(ConfigError):
            EmbeddingCache(6, num_layers=1, max_rows=0)

    def test_evicts_down_to_bound(self):
        cache = self._cache()
        assert cache.maybe_evict() == 3  # 6 resident rows, bound is 3
        assert cache.num_evicted == 3
        assert cache.rows_evicted == 3
        assert cache.evictions == 1
        # eviction is lazy: victims are NOT queued for recompute
        assert cache.num_dirty == 0
        # and a repeat pass has nothing further to trim
        assert cache.maybe_evict() == 0

    def test_least_recently_read_go_first(self):
        cache = self._cache()
        cache.touch(np.array([4]))
        cache.touch(np.array([1]))
        cache.touch(np.array([5]))
        cache.maybe_evict()
        # the unread rows (0, 2, 3) were evicted; read rows survive
        np.testing.assert_array_equal(cache.evicted, [0, 2, 3])

    def test_read_reloads_evicted_row(self):
        cache = self._cache()
        cache.touch(np.array([4, 1, 5]))
        cache.maybe_evict()
        cache.touch(np.array([2]))  # cache miss on an evicted row
        np.testing.assert_array_equal(cache.dirty, [2])
        np.testing.assert_array_equal(cache.evicted, [0, 3])
        assert cache.rows_reloaded == 1

    def test_invalidation_reclaims_evicted_rows(self):
        """Exactness invariant: a victim inside an invalidation cone
        must rejoin the dirty set (its stored layer outputs feed other
        dirty rows' aggregations)."""
        cache = self._cache()
        cache.touch(np.array([4, 1, 5]))
        cache.maybe_evict()  # 0, 2, 3 evicted
        cache.invalidate(PATH, np.array([1]))  # cone covers 0..2
        assert 0 in cache.dirty and 2 in cache.dirty
        np.testing.assert_array_equal(cache.evicted, [3])

    def test_dirty_rows_do_not_count_as_resident(self):
        cache = self._cache(max_rows=4)
        cache.mark_dirty(np.array([0, 1]))
        # 4 resident rows, bound 4: nothing to evict
        assert cache.maybe_evict() == 0

    def test_eviction_preserves_server_exactness(self):
        """A server with a tiny resident budget serves identical scores
        to an unbounded one — eviction trades recompute, not accuracy."""
        from repro.graph import AMLSimConfig, generate_amlsim
        from repro.models import build_model
        from repro.nn.linear import Linear
        from repro.serve import ModelServer, events_between

        dtdg = generate_amlsim(AMLSimConfig(
            num_accounts=80, num_timesteps=6, background_per_step=120,
            partner_persistence=0.85, seed=5)).dtdg

        def boot(max_rows):
            model = build_model("cdgcn", in_features=2, seed=0)
            fraud = Linear(model.embed_dim, 2, np.random.default_rng(7))
            return ModelServer(model, dtdg[0], fraud_head=fraud,
                               cache_max_rows=max_rows)

        bounded, unbounded = boot(16), boot(None)
        worst = 0.0
        for t in range(1, 6):
            for srv in (bounded, unbounded):
                srv.advance_time()
                srv.ingest_events(events_between(dtdg[t - 1], dtdg[t]))
            for v in (0, 40, 79):
                a = bounded.submit_fraud(v)
                b = unbounded.submit_fraud(v)
                bounded.drain()
                unbounded.drain()
                worst = max(worst, abs(a.result - b.result))
        assert worst < 1e-9
        assert bounded.counters.rows_evicted > 0
        assert unbounded.counters.rows_evicted == 0
        # bounded memory is paid for in recompute
        assert bounded.counters.rows_recomputed > \
            unbounded.counters.rows_recomputed

    def test_evicted_row_in_dirty_frontier_recomputes_not_stale(self):
        """The LRU ∩ dirty-frontier corner: evict a row, dirty it via
        an event touching its neighborhood, then read it — the refresh
        must recompute the row against the *new* topology, never serve
        the value cached before eviction."""
        from repro.graph import AMLSimConfig, generate_amlsim
        from repro.models import build_model
        from repro.serve import EdgeEvent, ModelServer

        dtdg = generate_amlsim(AMLSimConfig(
            num_accounts=60, num_timesteps=4, background_per_step=150,
            partner_persistence=0.85, seed=9)).dtdg
        model = build_model("cdgcn", in_features=2, seed=0)
        server = ModelServer(model, dtdg[0], cache_max_rows=8)
        server.advance_time()  # boundary eviction trims to the budget
        victim = 7
        # with untouched recency clocks the stable LRU evicts the
        # lowest row ids first — the victim is out of the resident set
        assert victim in server.cache.evicted
        stale = server.engine.embeddings[victim].copy()
        # an event incident to the victim pulls it into the dirty
        # frontier (and must reclaim it from the evicted set)
        server.ingest_events([EdgeEvent(victim, 3, "add", 5.0),
                              EdgeEvent(12, victim, "add", 2.0)])
        assert victim in server.cache.dirty
        assert victim not in server.cache.evicted
        reloaded_before = server.cache.rows_reloaded
        a = server.submit_link(victim, 3)
        server.drain()
        served = server.engine.embeddings[victim].copy()
        # reference: full recompute of the same resident state
        server.cache.invalidate_all()
        server.engine.refresh()
        np.testing.assert_allclose(served,
                                   server.engine.embeddings[victim],
                                   atol=1e-12)
        # the row really changed (a stale serve would be detectable)
        assert not np.allclose(served, stale)
        assert a.done
        # reloads are only counted for evicted-row cache misses; the
        # reclaim path recomputed through the dirty set instead
        assert server.cache.rows_reloaded == reloaded_before

    def test_eviction_counters_surface_in_stats(self):
        from repro.graph import AMLSimConfig, generate_amlsim
        from repro.models import build_model
        from repro.serve import ModelServer, events_between

        dtdg = generate_amlsim(AMLSimConfig(
            num_accounts=60, num_timesteps=4, background_per_step=90,
            seed=2)).dtdg
        model = build_model("cdgcn", in_features=2, seed=0)
        server = ModelServer(model, dtdg[0], cache_max_rows=10)
        server.advance_time()
        server.ingest_events(events_between(dtdg[0], dtdg[1]))
        server.submit_link(0, 1)
        server.drain()
        stats = server.stats()
        assert stats.counters.evictions >= 1
        assert stats.counters.rows_evicted >= 1
        assert stats.counters.rows_evicted == server.cache.rows_evicted
