"""Tests for the embedding cache and k-hop dirty expansion."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import GraphSnapshot
from repro.serve import EmbeddingCache, expand_dirty


def snap(n, pairs):
    return GraphSnapshot(n, np.array(pairs, dtype=np.int64).reshape(-1, 2))


# a path graph 0-1-2-3-4-5 (directed edges i -> i+1)
PATH = snap(6, [[i, i + 1] for i in range(5)])


class TestExpandDirty:
    def test_zero_hops_returns_seeds(self):
        np.testing.assert_array_equal(
            expand_dirty(PATH, np.array([2]), 0), [2])

    def test_one_hop_is_undirected(self):
        # vertex 2 reaches 1 (in-edge) and 3 (out-edge)
        np.testing.assert_array_equal(
            expand_dirty(PATH, np.array([2]), 1), [1, 2, 3])

    def test_two_hops(self):
        np.testing.assert_array_equal(
            expand_dirty(PATH, np.array([2]), 2), [0, 1, 2, 3, 4])

    def test_hops_saturate(self):
        out = expand_dirty(PATH, np.array([0]), 50)
        np.testing.assert_array_equal(out, np.arange(6))

    def test_disconnected_component_untouched(self):
        g = snap(6, [[0, 1], [1, 2], [4, 5]])
        out = expand_dirty(g, np.array([0]), 10)
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_empty_seeds(self):
        assert len(expand_dirty(PATH, np.empty(0, dtype=np.int64), 3)) == 0

    def test_multiple_seeds_merge(self):
        out = expand_dirty(PATH, np.array([0, 5]), 1)
        np.testing.assert_array_equal(out, [0, 1, 4, 5])


class TestEmbeddingCache:
    def test_starts_fully_dirty(self):
        cache = EmbeddingCache(6, num_layers=2)
        assert cache.all_dirty
        np.testing.assert_array_equal(cache.clean(), np.arange(6))
        assert cache.num_dirty == 0

    def test_k_defaults_to_depth(self):
        assert EmbeddingCache(6, num_layers=3).k_hops == 3

    def test_too_small_k_rejected(self):
        with pytest.raises(ConfigError):
            EmbeddingCache(6, num_layers=2, k_hops=1)

    def test_invalidate_expands_k_hops(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2])

    def test_invalidations_accumulate(self):
        cache = EmbeddingCache(6, num_layers=1)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        cache.invalidate(PATH, np.array([5]))
        np.testing.assert_array_equal(cache.dirty, [0, 1, 4, 5])
        assert cache.invalidations == 2

    def test_embeddings_require_priming(self):
        cache = EmbeddingCache(4, num_layers=1)
        with pytest.raises(ConfigError):
            _ = cache.embeddings


class TestSeedDeduplication:
    """Repeated seeds within one tick are not re-walked (exact-safe:
    a repeat's reach can only grow through edges whose own endpoints
    are fresh seeds of the commit that added them)."""

    def test_repeated_seed_skipped(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        walks = cache.invalidations
        cache.invalidate(PATH, np.array([0]))   # same endpoint again
        assert cache.invalidations == walks     # no second walk
        assert cache.seeds_deduplicated == 1
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2])

    def test_duplicate_seeds_within_one_batch(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0, 0, 0, 3]))
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2, 3, 4, 5])

    def test_mixed_batch_walks_only_fresh_seeds(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        before = cache.rows_invalidated
        cache.invalidate(PATH, np.array([0, 5]))   # 0 repeats, 5 fresh
        assert cache.seeds_deduplicated == 1
        # only 5's neighborhood was walked
        assert cache.rows_invalidated - before == 3
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2, 3, 4, 5])

    def test_coverage_stays_exact_when_topology_grows(self):
        # edge (0, 4) lands between two invalidations of seed 0: its
        # endpoints are seeds of the adding commit, so the repeat skip
        # loses nothing
        cache = EmbeddingCache(6, num_layers=1)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        grown = snap(6, [[i, i + 1] for i in range(5)] + [[0, 4]])
        cache.invalidate(grown, np.array([0, 4]))
        assert 3 in cache.dirty and 5 in cache.dirty

    def test_clean_resets_dedup_window(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        cache.clean()
        cache.invalidate(PATH, np.array([0]))
        assert cache.seeds_deduplicated == 0
        np.testing.assert_array_equal(cache.dirty, [0, 1, 2])


class TestMarkDirty:
    def test_unions_without_walking(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.mark_dirty(np.array([4, 1]))
        np.testing.assert_array_equal(cache.dirty, [1, 4])

    def test_empty_rows_noop(self):
        cache = EmbeddingCache(6, num_layers=2)
        cache.clean()
        cache.mark_dirty(np.empty(0, dtype=np.int64))
        assert cache.num_dirty == 0
        assert cache.invalidations == 0
