"""The serving engine's exactness contract (acceptance criterion).

Incremental, cache-invalidated inference must be numerically equal
(atol 1e-6) to a full recompute while a 20-timestep AML-Sim event
stream replays — for every supported model — and the engine's timeline
semantics must match the training-side ``model.forward``.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import AMLSimConfig, GraphSnapshot, generate_amlsim
from repro.models import MODEL_NAMES, build_model
from repro.serve import InferenceEngine, StreamIngestor, events_between
from repro.tensor import Tensor
from repro.train import compute_laplacians, degree_features


@pytest.fixture(scope="module")
def stream20():
    """A 20-timestep AML-Sim dynamic graph."""
    config = AMLSimConfig(num_accounts=150, num_timesteps=20,
                          background_per_step=250,
                          partner_persistence=0.85, num_fan_out=3,
                          num_fan_in=3, num_cycles=2, num_scatter_gather=2,
                          pattern_size=5, seed=11)
    sim = generate_amlsim(config)
    sim.dtdg.set_features(degree_features(sim.dtdg))
    return sim.dtdg


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_engine_matches_training_forward(stream20, name):
    """advance() over the timeline == model.forward embeddings."""
    dtdg = stream20
    model = build_model(name, in_features=2, seed=0)
    reference = model(compute_laplacians(dtdg),
                      [Tensor(f) for f in dtdg.features])
    engine = InferenceEngine(model, dtdg[0])
    for t in range(dtdg.num_timesteps):
        got = engine.advance(dtdg[t] if t else None)
        np.testing.assert_allclose(got, reference[t].data, atol=1e-6,
                                   err_msg=f"{name} diverged at t={t}")


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_incremental_equals_full_recompute_over_stream(stream20, name):
    """Acceptance: replay 20 timesteps as micro-batched edge events;
    after every batch the incrementally refreshed embeddings must equal
    a full recompute to atol 1e-6 (observed: exact to fp64 rounding)."""
    dtdg = stream20
    model = build_model(name, in_features=2, seed=0)
    inc = InferenceEngine(model, dtdg[0])
    full = InferenceEngine(model, dtdg[0])
    inc.advance()
    full.advance()
    ingestor = StreamIngestor(dtdg[0])
    partial_refreshes = 0
    for t in range(1, dtdg.num_timesteps):
        events = events_between(ingestor.resident, dtdg[t])
        chunk = max(1, len(events) // 4)
        for lo in range(0, len(events), chunk):
            ingestor.push_batch(events[lo:lo + chunk])
            result = ingestor.commit()
            inc.set_snapshot(result.snapshot, seeds=result.dirty)
            rows = inc.refresh()
            full.set_snapshot(result.snapshot, seeds=None)
            full.refresh()
            if rows < inc.num_vertices:
                partial_refreshes += 1
            np.testing.assert_allclose(
                inc.embeddings, full.embeddings, atol=1e-6,
                err_msg=f"{name} incremental != full at t={t}")
        assert ingestor.resident == dtdg[t]
        # timestep boundary: both advance their temporal carries
        np.testing.assert_allclose(inc.advance(), full.advance(),
                                   atol=1e-6)
    # the stream must actually have exercised partial recomputes,
    # otherwise this test proves nothing about the cache
    assert partial_refreshes > 10


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_unflushed_events_settle_before_advance(stream20, name):
    """Regression: events ingested but never refreshed before a
    timestep boundary must not poison the promoted carries.  A lazy
    engine (refreshes deferred past the boundary) must stay equal to an
    eager one that refreshes after every event batch — the engine
    settles pending dirty rows against the end-of-step graph before
    promoting."""
    dtdg = stream20
    model = build_model(name, in_features=2, seed=0)
    eager = InferenceEngine(model, dtdg[0])
    lazy = InferenceEngine(model, dtdg[0])
    eager.advance()
    lazy.advance()
    ingestor = StreamIngestor(dtdg[0])
    for t in range(1, dtdg.num_timesteps):
        events = events_between(ingestor.resident, dtdg[t])
        chunk = max(1, len(events) // 3)
        for lo in range(0, len(events), chunk):
            ingestor.push_batch(events[lo:lo + chunk])
            result = ingestor.commit()
            eager.set_snapshot(result.snapshot, seeds=result.dirty)
            eager.refresh()
            # lazy accumulates dirt, deliberately never refreshed
            lazy.set_snapshot(result.snapshot, seeds=result.dirty)
        np.testing.assert_allclose(lazy.advance(), eager.advance(),
                                   atol=1e-6,
                                   err_msg=f"{name} stale carries at t={t}")


def test_partial_aggregation_matches_spmm(stream20):
    """The row-sliced kernel == the same rows of the full SpMM,
    bit-for-bit (CSR row extraction keeps each row's entry order)."""
    dtdg = stream20
    model = build_model("cdgcn", in_features=2, seed=0)
    engine = InferenceEngine(model, dtdg[5])
    rng = np.random.default_rng(0)
    x = rng.normal(size=(dtdg.num_vertices, 4))
    rows = np.unique(rng.integers(0, dtdg.num_vertices, size=30))
    full = engine._aggregate(x, None)
    part = engine._aggregate(x, rows)
    np.testing.assert_array_equal(part, full[rows])


def test_refresh_before_advance_rejected(stream20):
    model = build_model("cdgcn", in_features=2, seed=0)
    engine = InferenceEngine(model, stream20[0])
    with pytest.raises(ConfigError):
        engine.refresh()


def test_vertex_set_must_stay_fixed(stream20):
    model = build_model("cdgcn", in_features=2, seed=0)
    engine = InferenceEngine(model, stream20[0])
    other = GraphSnapshot(stream20.num_vertices + 1,
                          np.array([[0, 1]], dtype=np.int64))
    with pytest.raises(ConfigError):
        engine.set_snapshot(other, seeds=None)


def test_unsupported_feature_width_rejected(stream20):
    model = build_model("cdgcn", in_features=3, seed=0)
    with pytest.raises(ConfigError):
        InferenceEngine(model, stream20[0])


def test_refresh_touches_only_dirty_region(stream20):
    """Clean rows must be served from cache, not recomputed."""
    dtdg = stream20
    model = build_model("cdgcn", in_features=2, seed=0)
    engine = InferenceEngine(model, dtdg[0])
    engine.advance()
    ingestor = StreamIngestor(dtdg[0])
    events = events_between(dtdg[0], dtdg[1])[:5]
    ingestor.push_batch(events)
    result = ingestor.commit()
    engine.set_snapshot(result.snapshot, seeds=result.dirty)
    rows = engine.refresh()
    assert 0 < rows < dtdg.num_vertices
