"""Tests for live edge-event ingestion (StreamIngestor)."""

import numpy as np
import pytest

from repro.errors import ConfigError, DatasetError
from repro.graph import GraphSnapshot, apply_diff
from repro.graph.generators import evolving_dtdg
from repro.serve import EdgeEvent, StreamIngestor, events_between


def snap(n, pairs, values=None):
    return GraphSnapshot(n, np.array(pairs, dtype=np.int64).reshape(-1, 2),
                         values)


class TestEdgeEvent:
    def test_bad_op_rejected(self):
        with pytest.raises(ConfigError):
            EdgeEvent(0, 1, op="upsert")

    def test_defaults(self):
        e = EdgeEvent(2, 3)
        assert e.op == "add" and e.value == 1.0


class TestStreamIngestor:
    def test_add_edge(self):
        ing = StreamIngestor(snap(4, [[0, 1]]))
        ing.push(EdgeEvent(2, 3))
        result = ing.commit()
        assert result.snapshot == snap(4, [[0, 1], [2, 3]])
        np.testing.assert_array_equal(result.dirty, [2, 3])
        assert result.num_events == 1

    def test_remove_edge(self):
        ing = StreamIngestor(snap(4, [[0, 1], [2, 3]]))
        ing.push(EdgeEvent(2, 3, op="remove"))
        result = ing.commit()
        assert result.snapshot == snap(4, [[0, 1]])

    def test_remove_missing_edge_noop(self):
        ing = StreamIngestor(snap(4, [[0, 1]]))
        ing.push(EdgeEvent(1, 2, op="remove"))
        result = ing.commit()
        assert result.snapshot == snap(4, [[0, 1]])
        # endpoints still reported dirty (conservative)
        np.testing.assert_array_equal(result.dirty, [1, 2])

    def test_add_existing_edge_accumulates_value(self):
        ing = StreamIngestor(snap(4, [[0, 1]], values=[2.0]))
        ing.push(EdgeEvent(0, 1, value=3.0))
        result = ing.commit()
        np.testing.assert_allclose(result.snapshot.values, [5.0])

    def test_remove_then_add_replaces_value(self):
        ing = StreamIngestor(snap(4, [[0, 1]], values=[2.0]))
        ing.push(EdgeEvent(0, 1, op="remove"))
        ing.push(EdgeEvent(0, 1, value=7.0))
        result = ing.commit()
        assert result.snapshot == snap(4, [[0, 1]], values=[7.0])

    def test_out_of_range_endpoint_rejected(self):
        ing = StreamIngestor(snap(4, [[0, 1]]))
        with pytest.raises(DatasetError):
            ing.push(EdgeEvent(0, 4))

    def test_empty_commit(self):
        base = snap(4, [[0, 1]])
        ing = StreamIngestor(base)
        result = ing.commit()
        assert result.num_events == 0
        assert result.snapshot is base
        assert len(result.dirty) == 0

    def test_diff_is_replayable(self):
        """The emitted SnapshotDiff must replay on a mirror of the old
        resident — the GD wire-format contract."""
        base = snap(5, [[0, 1], [1, 2], [3, 4]])
        mirror = snap(5, [[0, 1], [1, 2], [3, 4]])
        ing = StreamIngestor(base)
        ing.push_batch([EdgeEvent(2, 3), EdgeEvent(1, 2, op="remove")])
        result = ing.commit()
        assert apply_diff(mirror, result.diff) == result.snapshot

    def test_frontier_accumulates_until_taken(self):
        ing = StreamIngestor(snap(6, [[0, 1]]))
        ing.push(EdgeEvent(2, 3))
        ing.commit()
        ing.push(EdgeEvent(4, 5))
        ing.commit()
        np.testing.assert_array_equal(ing.frontier, [2, 3, 4, 5])
        np.testing.assert_array_equal(ing.take_frontier(), [2, 3, 4, 5])
        assert len(ing.frontier) == 0

    def test_counters_and_payload(self):
        ing = StreamIngestor(snap(4, [[0, 1]]))
        ing.push_batch([EdgeEvent(1, 2), EdgeEvent(2, 3)])
        result = ing.commit()
        assert ing.total_events == 2
        assert ing.total_commits == 1
        assert ing.total_payload_nbytes == result.payload_nbytes > 0

    def test_rebase_keeps_vertex_set(self):
        ing = StreamIngestor(snap(4, [[0, 1]]))
        with pytest.raises(DatasetError):
            ing.rebase(snap(5, [[0, 1]]))


class TestEventsBetween:
    def test_roundtrip_over_evolving_stream(self):
        dtdg = evolving_dtdg(40, 6, 60, churn=0.3, seed=9)
        ing = StreamIngestor(dtdg[0])
        for t in range(1, dtdg.num_timesteps):
            ing.push_batch(events_between(ing.resident, dtdg[t]))
            ing.commit()
            assert ing.resident == dtdg[t], f"mismatch at t={t}"

    def test_value_change_becomes_replace_pair(self):
        a = snap(4, [[0, 1], [1, 2]], values=[1.0, 1.0])
        b = snap(4, [[0, 1], [1, 2]], values=[1.0, 4.0])
        events = events_between(a, b)
        ing = StreamIngestor(a)
        ing.push_batch(events)
        assert ing.commit().snapshot == b

    def test_tiny_relative_value_change_not_dropped(self):
        """Value comparison must be exact: a 5e-6 relative change on a
        large balance is still a change."""
        a = snap(4, [[0, 1]], values=[2_000_000.0])
        b = snap(4, [[0, 1]], values=[2_000_010.0])
        events = events_between(a, b)
        assert len(events) == 2  # remove + add
        ing = StreamIngestor(a)
        ing.push_batch(events)
        np.testing.assert_array_equal(ing.commit().snapshot.values,
                                      [2_000_010.0])
