"""Tests for the collectives, link model and the Cluster facade."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec, Communicator, RankClock
from repro.errors import CommunicationError, ConfigError


def make_comm(p, gpus_per_node=8):
    nodes = max(1, -(-p // gpus_per_node))
    spec = ClusterSpec.aimos(num_nodes=nodes,
                             gpus_per_node=p if nodes == 1 else gpus_per_node)
    clocks = [RankClock(r) for r in range(p)]
    return Communicator(spec, clocks), clocks


class TestAllToAll:
    def test_uniform_exchange_barrier_sync(self):
        comm, clocks = make_comm(4)
        payload = np.full((4, 4), 1000.0)
        wall = comm.all_to_all_bytes(payload)
        assert wall > 0
        # bulk-synchronous: all clocks equal after the collective
        times = {c.now for c in clocks}
        assert len(times) == 1

    def test_volume_excludes_diagonal(self):
        comm, _ = make_comm(3)
        payload = np.full((3, 3), 10.0)
        comm.all_to_all_bytes(payload)
        assert comm.volume_bytes() == 60  # 9 cells minus 3 diagonal

    def test_wrong_shape_rejected(self):
        comm, _ = make_comm(3)
        with pytest.raises(CommunicationError):
            comm.all_to_all_bytes(np.zeros((2, 2)))

    def test_inter_node_slower_than_intra(self):
        intra_comm, _ = make_comm(8)           # one node
        inter_comm, _ = make_comm(16)          # two nodes
        payload8 = np.full((8, 8), 1e6)
        payload16 = np.full((16, 16), 1e6 / 4)  # same total volume
        t_intra = intra_comm.all_to_all_bytes(payload8)
        t_inter = inter_comm.all_to_all_bytes(payload16)
        assert t_inter > t_intra

    def test_array_exchange_transposes(self):
        comm, _ = make_comm(3)
        buffers = [[np.full((2,), 10 * src + dst) for dst in range(3)]
                   for src in range(3)]
        out = comm.all_to_all(buffers)
        for dst in range(3):
            for src in range(3):
                np.testing.assert_array_equal(out[dst][src],
                                              10 * src + dst)

    def test_array_exchange_bad_shape(self):
        comm, _ = make_comm(3)
        with pytest.raises(CommunicationError):
            comm.all_to_all([[None] * 2] * 3)

    def test_volume_by_label(self):
        comm, _ = make_comm(2)
        comm.all_to_all_bytes(np.full((2, 2), 8.0), label="fwd")
        comm.all_to_all_bytes(np.full((2, 2), 8.0), label="bwd")
        assert comm.volume_bytes("fwd") == 16
        assert comm.volume_bytes() == 32
        assert comm.volume_units("fwd") == 4.0  # 16 bytes = 4 fp32


class TestAllReduce:
    def test_sum_correct(self):
        comm, _ = make_comm(4)
        arrays = [np.full((3,), float(r)) for r in range(4)]
        total = comm.all_reduce_sum(arrays)
        np.testing.assert_array_equal(total, np.full((3,), 6.0))

    def test_single_rank_free(self):
        comm, clocks = make_comm(1)
        comm.all_reduce_sum([np.ones(4)])
        assert clocks[0].now == 0.0

    def test_mismatched_buffers(self):
        comm, _ = make_comm(2)
        with pytest.raises(CommunicationError):
            comm.all_reduce_sum([np.ones(3)])
        with pytest.raises(CommunicationError):
            comm.all_reduce_sum([np.ones(3), np.ones(4)])

    def test_gradient_volume_separate_label(self):
        comm, _ = make_comm(4)
        comm.all_to_all_bytes(np.full((4, 4), 100.0), label="redistribution")
        comm.all_reduce_sum([np.ones(2) for _ in range(4)])
        assert comm.volume_bytes("redistribution") == 1200
        assert comm.volume_bytes("gradient") > 0
        assert comm.volume_bytes("gradient") < \
            comm.volume_bytes("redistribution")


class TestBroadcast:
    def test_all_ranks_receive_copy(self):
        comm, _ = make_comm(3)
        data = np.arange(4.0)
        out = comm.broadcast(data, root=0)
        assert len(out) == 3
        for arr in out:
            np.testing.assert_array_equal(arr, data)
            assert arr is not data

    def test_bad_root(self):
        comm, _ = make_comm(2)
        with pytest.raises(CommunicationError):
            comm.broadcast(np.ones(1), root=5)


class TestCommunicatorConstruction:
    def test_empty_rejected(self):
        with pytest.raises(CommunicationError):
            Communicator(ClusterSpec.single_node(2), [])

    def test_too_many_ranks_rejected(self):
        spec = ClusterSpec.single_node(2)
        with pytest.raises(CommunicationError):
            Communicator(spec, [RankClock(r) for r in range(3)])


class TestNodeBoundaryEffect:
    """The paper's §6.3 observation: crossing the node boundary hurts."""

    def test_fixed_volume_all_to_all_dips_at_node_boundary(self):
        # O(T·N) fixed total volume spread over P ranks, like snapshot
        # partitioning's redistribution
        total = 64e6
        times = {}
        for p in (4, 8, 16, 32):
            comm, _ = make_comm(p)
            per_pair = total / (p * p)
            times[p] = comm.all_to_all_bytes(np.full((p, p), per_pair))
        # within one node, more ranks help or stay flat
        assert times[8] <= times[4] * 1.2
        # crossing to two nodes is slower than one node
        assert times[16] > times[8]
        # more nodes -> more NICs -> recovery
        assert times[32] < times[16]


class TestCluster:
    def test_of_size_small(self):
        c = Cluster.of_size(4)
        assert c.num_ranks == 4
        assert c.spec.num_nodes == 1

    def test_of_size_multi_node(self):
        c = Cluster.of_size(24)
        assert c.spec.num_nodes == 3
        assert c.num_ranks == 24

    def test_of_size_invalid(self):
        with pytest.raises(ConfigError):
            Cluster.of_size(0)

    def test_num_ranks_bounds(self):
        spec = ClusterSpec.single_node(4)
        with pytest.raises(ConfigError):
            Cluster(spec, num_ranks=9)

    def test_breakdown_tracks_critical_path(self):
        c = Cluster.of_size(2)
        c.device(0).compute_dense(c.spec.dense_flops)  # 1s on rank 0
        assert c.breakdown.compute == pytest.approx(1.0)
        assert c.elapsed == pytest.approx(1.0)

    def test_barrier_aligns_clocks(self):
        c = Cluster.of_size(2)
        c.device(0).compute_dense(c.spec.dense_flops)
        c.barrier()
        assert c.clocks[0].now == pytest.approx(c.clocks[1].now)

    def test_peak_memory(self):
        c = Cluster.of_size(2)
        c.device(1).alloc(12345)
        assert c.peak_memory() == 12345

    def test_reset(self):
        c = Cluster.of_size(2)
        c.device(0).alloc(100)
        c.device(0).compute_dense(1e12)
        c.comm.all_reduce_sum([np.ones(2), np.ones(2)])
        c.reset()
        assert c.elapsed == 0.0
        assert c.device(0).in_use == 0
        assert c.comm.events == []
