"""Tests for ClusterSpec geometry and the simulated clocks."""

import pytest

from repro.cluster import ClusterSpec, RankClock, TimeBreakdown, max_breakdown
from repro.errors import ConfigError


class TestClusterSpec:
    def test_defaults_match_paper_testbed(self):
        spec = ClusterSpec.aimos()
        assert spec.total_gpus == 128
        assert spec.num_nodes == 16
        assert spec.gpus_per_node == 8

    def test_node_of(self):
        spec = ClusterSpec.aimos()
        assert spec.node_of(0) == 0
        assert spec.node_of(7) == 0
        assert spec.node_of(8) == 1
        assert spec.node_of(127) == 15

    def test_node_of_out_of_range(self):
        spec = ClusterSpec.single_node(4)
        with pytest.raises(ConfigError):
            spec.node_of(4)

    def test_same_node(self):
        spec = ClusterSpec.aimos()
        assert spec.same_node(0, 7)
        assert not spec.same_node(7, 8)

    def test_link_classes(self):
        spec = ClusterSpec.aimos()
        bw_self, lat_self = spec.link(3, 3)
        assert bw_self == float("inf") and lat_self == 0.0
        bw_intra, _ = spec.link(0, 1)
        bw_inter, _ = spec.link(0, 9)
        assert bw_intra == spec.intra_bandwidth
        assert bw_inter == spec.inter_bandwidth
        assert bw_intra > bw_inter

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(ConfigError):
            ClusterSpec(gpu_memory_bytes=0)
        with pytest.raises(ConfigError):
            ClusterSpec(inter_bandwidth=-1.0)

    def test_single_node(self):
        spec = ClusterSpec.single_node(4)
        assert spec.total_gpus == 4
        assert spec.same_node(0, 3)

    def test_with_gpus_whole_nodes(self):
        spec = ClusterSpec.aimos().with_gpus(32)
        assert spec.num_nodes == 4

    def test_with_gpus_sub_node(self):
        spec = ClusterSpec.aimos().with_gpus(4)
        assert spec.num_nodes == 1
        assert spec.gpus_per_node == 4

    def test_with_gpus_invalid(self):
        with pytest.raises(ConfigError):
            ClusterSpec.aimos().with_gpus(0)


class TestTimeBreakdown:
    def test_total(self):
        b = TimeBreakdown(transfer=1.0, compute=2.0, comm=3.0)
        assert b.total == 6.0

    def test_add(self):
        a = TimeBreakdown(1.0, 2.0, 3.0)
        b = TimeBreakdown(0.5, 0.5, 0.5)
        c = a + b
        assert (c.transfer, c.compute, c.comm) == (1.5, 2.5, 3.5)

    def test_scaled(self):
        b = TimeBreakdown(2.0, 4.0, 6.0).scaled(0.5)
        assert (b.transfer, b.compute, b.comm) == (1.0, 2.0, 3.0)

    def test_as_millis(self):
        ms = TimeBreakdown(0.001, 0.002, 0.003).as_millis()
        assert ms["total_ms"] == pytest.approx(6.0)
        assert ms["transfer_ms"] == pytest.approx(1.0)


class TestRankClock:
    def test_advance_buckets(self):
        c = RankClock(0)
        c.advance("transfer", 1.0)
        c.advance("compute", 2.0)
        c.advance("comm", 3.0)
        assert c.now == 6.0
        assert c.breakdown.compute == 2.0

    def test_unknown_bucket(self):
        with pytest.raises(ValueError):
            RankClock(0).advance("gpu", 1.0)

    def test_negative_time(self):
        with pytest.raises(ValueError):
            RankClock(0).advance("compute", -1.0)

    def test_wait_until_charges_bucket(self):
        c = RankClock(0)
        c.advance("compute", 1.0)
        c.wait_until(3.0, "comm")
        assert c.now == 3.0
        assert c.breakdown.comm == 2.0

    def test_wait_until_past_is_noop(self):
        c = RankClock(0)
        c.advance("compute", 5.0)
        c.wait_until(1.0, "comm")
        assert c.now == 5.0

    def test_reset(self):
        c = RankClock(0)
        c.advance("compute", 5.0)
        c.reset()
        assert c.now == 0.0

    def test_max_breakdown_picks_slowest(self):
        a, b = RankClock(0), RankClock(1)
        a.advance("compute", 1.0)
        b.advance("transfer", 5.0)
        slowest = max_breakdown([a, b])
        assert slowest.transfer == 5.0
        assert slowest.compute == 0.0

    def test_max_breakdown_empty(self):
        assert max_breakdown([]).total == 0.0
