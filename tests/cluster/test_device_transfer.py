"""Tests for device memory accounting and the CPU→GPU transfer engine."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, Device, TransferEngine
from repro.errors import DeviceOOM
from repro.graph.generators import evolving_dtdg


def make_device(capacity=1000):
    spec = ClusterSpec.single_node(1, gpu_memory_bytes=capacity)
    return Device(0, spec)


class TestDeviceMemory:
    def test_alloc_free_cycle(self):
        d = make_device(100)
        h = d.alloc(60, "block")
        assert d.in_use == 60
        d.free(h)
        assert d.in_use == 0

    def test_oom_raised_with_context(self):
        d = make_device(100)
        d.alloc(80)
        with pytest.raises(DeviceOOM) as exc:
            d.alloc(30, "activations")
        assert exc.value.requested == 30
        assert exc.value.in_use == 80
        assert exc.value.capacity == 100

    def test_oom_leaves_state_unchanged(self):
        d = make_device(100)
        d.alloc(80)
        with pytest.raises(DeviceOOM):
            d.alloc(30)
        assert d.in_use == 80

    def test_peak_tracking(self):
        d = make_device(100)
        h = d.alloc(70)
        d.free(h)
        d.alloc(10)
        assert d.peak_in_use == 70

    def test_double_free_rejected(self):
        d = make_device(100)
        h = d.alloc(10)
        d.free(h)
        with pytest.raises(KeyError):
            d.free(h)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            make_device().alloc(-5)

    def test_hold_context_frees_on_exit(self):
        d = make_device(100)
        with d.hold(50):
            assert d.in_use == 50
        assert d.in_use == 0

    def test_hold_frees_on_exception(self):
        d = make_device(100)
        with pytest.raises(RuntimeError):
            with d.hold(50):
                raise RuntimeError("kernel failed")
        assert d.in_use == 0

    def test_free_all_by_tag(self):
        d = make_device(100)
        d.alloc(10, "a")
        d.alloc(20, "b")
        d.alloc(30, "a")
        released = d.free_all("a")
        assert released == 40
        assert d.in_use == 20

    def test_available(self):
        d = make_device(100)
        d.alloc(30)
        assert d.available == 70

    def test_reset(self):
        d = make_device(100)
        d.alloc(30)
        d.compute_dense(1e9)
        d.reset()
        assert d.in_use == 0 and d.clock.now == 0.0


class TestDeviceCompute:
    def test_dense_rate(self):
        d = make_device()
        secs = d.compute_dense(d.spec.dense_flops)  # exactly 1 second
        assert secs == pytest.approx(1.0)
        assert d.clock.breakdown.compute == pytest.approx(1.0)

    def test_sparse_slower_than_dense(self):
        d = make_device()
        t_sparse = d.compute_sparse(1e9)
        t_dense = d.compute_dense(1e9)
        assert t_sparse > t_dense

    def test_zero_flops(self):
        d = make_device()
        assert d.compute_dense(0) == 0.0


class TestTransferEngine:
    def test_h2d_time_model(self):
        d = make_device()
        eng = TransferEngine()
        secs = eng.h2d(d, 11_000_000)
        expected = d.spec.h2d_latency + 11_000_000 / d.spec.h2d_bandwidth
        assert secs == pytest.approx(expected)
        assert d.clock.breakdown.transfer == pytest.approx(expected)

    def test_stats_accumulate(self):
        d = make_device()
        eng = TransferEngine()
        eng.h2d(d, 100)
        eng.h2d(d, 200)
        assert eng.stats.bytes_moved == 300
        assert eng.stats.num_transfers == 2

    def test_naive_block_charges_full_bytes(self):
        dtdg = evolving_dtdg(40, 6, 80, churn=0.1, seed=0)
        d = make_device()
        eng = TransferEngine()
        out = eng.send_block_naive(d, dtdg.snapshots)
        assert out == dtdg.snapshots
        assert eng.stats.bytes_moved == sum(s.nbytes for s in dtdg.snapshots)

    def test_gd_block_reconstructs_and_saves(self):
        dtdg = evolving_dtdg(40, 8, 80, churn=0.1, seed=1)
        naive = TransferEngine()
        gd = TransferEngine()
        d1, d2 = make_device(), make_device()
        naive.send_block_naive(d1, dtdg.snapshots)
        received = gd.send_block_gd(d2, dtdg.snapshots)
        # decoded snapshots are exactly the originals
        for got, want in zip(received, dtdg.snapshots):
            assert got == want
        assert gd.stats.bytes_moved < naive.stats.bytes_moved
        assert gd.gd_savings_ratio > 1.0
        assert d2.clock.breakdown.transfer < d1.clock.breakdown.transfer

    def test_gd_on_independent_snapshots_gains_nothing(self):
        from repro.graph.generators import random_dtdg
        dtdg = random_dtdg(60, 6, 1.5, seed=2)
        gd = TransferEngine()
        gd.send_block_gd(make_device(), dtdg.snapshots)
        # disjoint topologies: diffs carry ~2x the index data
        assert gd.gd_savings_ratio < 1.05

    def test_gd_empty_block(self):
        eng = TransferEngine()
        assert eng.send_block_gd(make_device(), []) == []

    def test_savings_ratio_defaults_to_one(self):
        assert TransferEngine().gd_savings_ratio == 1.0

    def test_reset(self):
        eng = TransferEngine()
        eng.h2d(make_device(), 100)
        eng.reset()
        assert eng.stats.bytes_moved == 0
