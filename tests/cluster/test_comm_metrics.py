"""Communicator volume ledger exported as labeled registry counters."""

import numpy as np

from repro.cluster import ClusterSpec, Communicator, RankClock
from repro.obs import MetricsRegistry


def make_comm(p, gpus_per_node=8):
    nodes = max(1, -(-p // gpus_per_node))
    spec = ClusterSpec.aimos(num_nodes=nodes,
                             gpus_per_node=p if nodes == 1 else gpus_per_node)
    clocks = [RankClock(r) for r in range(p)]
    return Communicator(spec, clocks), clocks


def test_collect_metrics_mirrors_volume_ledger():
    comm, _ = make_comm(4)
    comm.all_reduce_sum([np.ones(64) for _ in range(4)], label="gradient")
    comm.all_to_all_bytes(np.full((4, 4), 100.0), label="redistribution")
    reg = MetricsRegistry()
    comm.collect_metrics(reg)
    assert reg.value("comm_bytes_total", label="gradient") == \
        comm.volume_bytes("gradient")
    assert reg.value("comm_bytes_total", label="redistribution") == \
        comm.volume_bytes("redistribution")
    assert reg.value("comm_full_equivalent_bytes_total",
                     label="gradient") == \
        comm.full_equivalent_bytes("gradient")
    # labels partition the total exactly
    total = (reg.value("comm_bytes_total", label="gradient")
             + reg.value("comm_bytes_total", label="redistribution"))
    assert total == comm.volume_bytes()


def test_collect_metrics_is_idempotent_set_not_add():
    """Export-time sync mirrors the ledger; calling it twice must not
    double-count (counters are set_to, not inc)."""
    comm, _ = make_comm(2)
    comm.all_reduce_sum([np.ones(16) for _ in range(2)], label="gradient")
    reg = MetricsRegistry()
    comm.collect_metrics(reg)
    first = reg.value("comm_bytes_total", label="gradient")
    comm.collect_metrics(reg)
    assert reg.value("comm_bytes_total", label="gradient") == first


def test_collect_metrics_with_no_events_exports_nothing():
    comm, _ = make_comm(2)
    reg = MetricsRegistry()
    comm.collect_metrics(reg)
    assert reg.value("comm_bytes_total", label="gradient") == 0.0
