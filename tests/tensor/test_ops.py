"""Gradient and semantics tests for primitive ops, incl. property-based
gradcheck with hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.tensor import Tensor, ops
from tests.helpers import check_gradients


def rng():
    return np.random.default_rng(1234)


class TestElementwise:
    def test_add_broadcast_bias(self):
        x = Tensor(rng().normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng().normal(size=(3,)), requires_grad=True)
        check_gradients(lambda: (x + b).sum(), [x, b])

    def test_sub(self):
        x = Tensor(rng().normal(size=(3, 3)), requires_grad=True)
        y = Tensor(rng().normal(size=(3, 3)), requires_grad=True)
        check_gradients(lambda: (x - y).sum(), [x, y])

    def test_mul_broadcast_scalar_tensor(self):
        x = Tensor(rng().normal(size=(2, 5)), requires_grad=True)
        s = Tensor(2.5, requires_grad=True)
        check_gradients(lambda: (x * s).sum(), [x, s])

    def test_div(self):
        x = Tensor(rng().normal(size=(4,)) + 3.0, requires_grad=True)
        y = Tensor(rng().normal(size=(4,)) + 3.0, requires_grad=True)
        check_gradients(lambda: (x / y).sum(), [x, y])

    def test_exp_log_sqrt(self):
        x = Tensor(np.abs(rng().normal(size=(5,))) + 0.5, requires_grad=True)
        check_gradients(lambda: ops.exp(x).sum(), [x])
        check_gradients(lambda: ops.log(x).sum(), [x])
        check_gradients(lambda: ops.sqrt(x).sum(), [x])

    def test_power(self):
        x = Tensor(np.abs(rng().normal(size=(5,))) + 1.0, requires_grad=True)
        check_gradients(lambda: ops.power(x, 3.0).sum(), [x])

    def test_abs(self):
        x = Tensor(np.array([-2.0, 3.0, -4.0]), requires_grad=True)
        ops.abs_(x).sum().backward()
        np.testing.assert_array_equal(x.grad, [-1.0, 1.0, -1.0])

    def test_maximum(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        out = ops.maximum(a, b)
        np.testing.assert_array_equal(out.data, [2.0, 5.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 0.0])

    def test_clip(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        out = ops.clip(x, -1.0, 1.0)
        np.testing.assert_array_equal(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([9.0, 8.0, 7.0]), requires_grad=True)
        out = ops.where(cond, a, b)
        np.testing.assert_array_equal(out.data, [1.0, 8.0, 3.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0, 0.0])


class TestMatmul:
    def test_2d_2d(self):
        a = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng().normal(size=(4, 2)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matvec(self):
        a = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        v = Tensor(rng().normal(size=(4,)), requires_grad=True)
        check_gradients(lambda: (a @ v).sum(), [a, v])

    def test_vecmat(self):
        v = Tensor(rng().normal(size=(3,)), requires_grad=True)
        a = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (v @ a).sum(), [v, a])

    def test_inner(self):
        u = Tensor(rng().normal(size=(5,)), requires_grad=True)
        v = Tensor(rng().normal(size=(5,)), requires_grad=True)
        check_gradients(lambda: u @ v, [u, v])

    def test_shape_mismatch_raises(self):
        a = Tensor(np.zeros((2, 3)))
        b = Tensor(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            _ = a @ b


class TestShapeOps:
    def test_transpose_default(self):
        a = Tensor(rng().normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda: (a.T @ a).sum(), [a])

    def test_transpose_axes(self):
        a = Tensor(rng().normal(size=(2, 3, 4)), requires_grad=True)
        check_gradients(
            lambda: ops.transpose(a, (2, 0, 1)).sum(), [a])

    def test_reshape_roundtrip(self):
        a = Tensor(rng().normal(size=(6,)), requires_grad=True)
        check_gradients(lambda: a.reshape(2, 3).sum(), [a])

    def test_getitem_rows(self):
        a = Tensor(rng().normal(size=(5, 3)), requires_grad=True)
        check_gradients(lambda: a[1:4].sum(), [a])

    def test_getitem_fancy_repeated_index_accumulates(self):
        a = Tensor(np.zeros((4, 2)), requires_grad=True)
        idx = np.array([0, 0, 3])
        out = a[idx].sum()
        out.backward()
        np.testing.assert_array_equal(a.grad[:, 0], [2.0, 0.0, 0.0, 1.0])

    def test_concat_axis0(self):
        a = Tensor(rng().normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng().normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda: ops.concat([a, b], axis=0).sum(), [a, b])

    def test_concat_axis1(self):
        a = Tensor(rng().normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng().normal(size=(2, 5)), requires_grad=True)
        check_gradients(lambda: ops.concat([a, b], axis=1).sum(), [a, b])

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            ops.concat([])

    def test_stack(self):
        a = Tensor(rng().normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng().normal(size=(2, 3)), requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 2, 3)
        check_gradients(lambda: ops.stack([a, b]).sum(), [a, b])

    def test_stack_empty_raises(self):
        with pytest.raises(ShapeError):
            ops.stack([])


class TestReductions:
    def test_sum_all(self):
        a = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis(self):
        a = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.sum(axis=0).sum(), [a])
        check_gradients(lambda: a.sum(axis=1, keepdims=True).sum(), [a])

    def test_mean_all(self):
        a = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.mean(), [a])

    def test_mean_axis(self):
        a = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.mean(axis=1).sum(), [a])

    def test_scale_rows(self):
        a = Tensor(rng().normal(size=(4, 3)), requires_grad=True)
        scales = np.array([1.0, 0.5, 2.0, 0.0])
        check_gradients(lambda: ops.scale_rows(a, scales).sum(), [a])

    def test_scale_rows_bad_length(self):
        a = Tensor(np.zeros((4, 3)))
        with pytest.raises(ShapeError):
            ops.scale_rows(a, np.ones(3))


@st.composite
def small_matrices(draw):
    rows = draw(st.integers(1, 4))
    cols = draw(st.integers(1, 4))
    elems = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)
    data = draw(st.lists(elems, min_size=rows * cols, max_size=rows * cols))
    return np.array(data).reshape(rows, cols)


class TestPropertyBased:
    @given(small_matrices())
    @settings(max_examples=30, deadline=None)
    def test_sum_linear_in_input(self, m):
        x = Tensor(m, requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(m))

    @given(small_matrices(), st.floats(-2.0, 2.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_scalar_mul_gradient(self, m, c):
        x = Tensor(m, requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(m, c))

    @given(small_matrices())
    @settings(max_examples=30, deadline=None)
    def test_double_use_gradient_is_doubled(self, m):
        x = Tensor(m, requires_grad=True)
        (x + x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(m, 2.0))

    @given(small_matrices())
    @settings(max_examples=20, deadline=None)
    def test_transpose_involution(self, m):
        x = Tensor(m)
        np.testing.assert_array_equal(x.T.T.data, m)

    @given(small_matrices())
    @settings(max_examples=20, deadline=None)
    def test_concat_split_roundtrip(self, m):
        x = Tensor(m, requires_grad=True)
        y = Tensor(m.copy(), requires_grad=True)
        cat = ops.concat([x, y], axis=0)
        assert cat.shape == (2 * m.shape[0], m.shape[1])
        cat.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(m))
        np.testing.assert_array_equal(y.grad, np.ones_like(m))
