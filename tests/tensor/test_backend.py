"""Kernel-backend registry: selection precedence, fallback, pickling,
and the torch-device-like mismatch semantics."""

import pickle
import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import KernelError
from repro.graph.inc_laplacian import LaplacianMaintainer
from repro.graph.snapshot import GraphSnapshot
from repro.models import build_model
from repro.serve import InferenceEngine
from repro.tensor import Tensor
from repro.tensor import backend as backend_mod
from repro.tensor.backend import (available_backends, get_backend,
                                  register_backend, registered_backends,
                                  resolve_backend)
from repro.tensor.backend.reference import ReferenceBackend
from repro.tensor.sparse import SparseMatrix, spmm


@pytest.fixture(autouse=True)
def _no_env_backend(monkeypatch):
    """These tests pin backends explicitly; a leaked env selection
    would silently change what `default` means."""
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)


@pytest.fixture
def mirror():
    """A second always-available backend, distinct from reference's
    singleton — lets the mismatch tests run on machines where no
    accelerated backend compiles."""
    class MirrorBackend(ReferenceBackend):
        name = "mirror"

    register_backend(MirrorBackend)
    yield get_backend("mirror")
    backend_mod._REGISTRY.pop("mirror", None)
    backend_mod._INSTANCES.pop("mirror", None)


def _random_sparse(n=6, seed=0, backend=None):
    csr = sp.random(n, n, density=0.4, random_state=seed,
                    dtype=np.float64).tocsr()
    return SparseMatrix(csr, backend=backend)


def _small_snapshot():
    edges = np.array([[0, 1], [1, 2], [2, 0], [3, 1], [2, 3]],
                     dtype=np.int64)
    return GraphSnapshot(4, edges)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"reference", "numba", "cnative"} <= set(registered_backends())

    def test_reference_always_available(self):
        assert "reference" in available_backends()

    def test_singleton_and_instance_passthrough(self):
        ref = get_backend("reference")
        assert get_backend("reference") is ref
        assert get_backend(None) is ref
        assert get_backend(ref) is ref

    def test_unknown_name_raises(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            get_backend("definitely-not-a-backend")
        with pytest.raises(KernelError):
            _random_sparse(backend="definitely-not-a-backend")

    def test_register_rejects_abstract_name(self):
        from repro.tensor.backend.base import KernelBackend
        with pytest.raises(KernelError):
            register_backend(KernelBackend)

    def test_pickle_ships_only_the_name(self):
        for name in available_backends():
            kb = get_backend(name)
            assert pickle.loads(pickle.dumps(kb)) is kb


class TestPrecedence:
    def test_default_is_reference(self):
        assert resolve_backend() is get_backend("reference")

    def test_env_beats_default(self, monkeypatch, mirror):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "mirror")
        assert resolve_backend() is mirror
        assert _random_sparse().backend is mirror

    def test_kwarg_beats_env(self, monkeypatch, mirror):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "mirror")
        ref = get_backend("reference")
        assert resolve_backend("reference") is ref
        assert resolve_backend(ref) is ref
        assert _random_sparse(backend="reference").backend is ref


class TestFallback:
    def test_unavailable_backend_warns_once_then_reference(self,
                                                           monkeypatch):
        # simulate `import numba` failing regardless of what this
        # machine has installed (satellite: graceful degradation)
        from repro.tensor.backend import numba_backend
        monkeypatch.setattr(numba_backend, "_HAVE_NUMBA", False)
        backend_mod._reset_for_tests()
        try:
            with pytest.warns(RuntimeWarning, match="'numba' is unavailable"):
                got = get_backend("numba")
            assert got is get_backend("reference")
            # second resolution: cached under the requested name, silent
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert get_backend("numba") is got
            # and the fallback instance still runs the kernel surface
            csr = sp.random(5, 5, density=0.5, random_state=1,
                            dtype=np.float64).tocsr()
            x = np.ones((5, 3))
            np.testing.assert_array_equal(got.spmm(csr, x), csr @ x)
        finally:
            backend_mod._reset_for_tests()


class TestMismatch:
    def test_spmm_kwarg_mismatch_raises(self, mirror):
        s = _random_sparse(backend="reference")
        x = Tensor(np.ones((6, 2)))
        with pytest.raises(KernelError, match="mirror"):
            spmm(s, x, backend="mirror")
        # matching explicit kwarg is fine
        spmm(s, x, backend="reference")

    def test_with_backend_converts_and_shares_structure(self, mirror):
        s = _random_sparse(backend="reference")
        s.transposed_csr()  # populate the shared transpose cache
        s2 = s.with_backend("mirror")
        assert s2.backend is mirror
        assert s2.csr is s.csr
        assert s2.transpose_builds == 1  # cache travelled with the copy
        out = spmm(s2, Tensor(np.ones((6, 2))), backend="mirror")
        np.testing.assert_array_equal(out.data, s.csr @ np.ones((6, 2)))

    def test_engine_adopts_injected_maintainer_backend(self, mirror):
        snap = _small_snapshot()
        model = build_model("cdgcn", in_features=2, seed=0)
        maintainer = LaplacianMaintainer(snap, backend="mirror")
        engine = InferenceEngine(model, snap, maintainer=maintainer)
        assert engine.kernel_backend is mirror

    def test_engine_maintainer_mismatch_raises(self, mirror):
        snap = _small_snapshot()
        model = build_model("cdgcn", in_features=2, seed=0)
        maintainer = LaplacianMaintainer(snap, backend="reference")
        with pytest.raises(KernelError, match="pinned"):
            InferenceEngine(model, snap, maintainer=maintainer,
                            kernel_backend="mirror")

    def test_adopt_maintainer_mismatch_raises(self, mirror):
        snap = _small_snapshot()
        model = build_model("cdgcn", in_features=2, seed=0)
        engine = InferenceEngine(model, snap,
                                 kernel_backend="reference")
        with pytest.raises(KernelError, match="adopt"):
            engine.adopt_maintainer(
                LaplacianMaintainer(snap, backend="mirror"))
