"""Tests for Module/Parameter discovery, state dicts, optimizers, init."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.tensor import Adam, Module, Parameter, SGD, Tensor, clip_grad_norm
from repro.tensor import functional as F, init


class TinyLinear(Module):
    def __init__(self, n_in, n_out, rng):
        super().__init__()
        self.weight = Parameter(init.xavier_uniform((n_in, n_out), rng))
        self.bias = Parameter(np.zeros(n_out))

    def forward(self, x):
        return x @ self.weight + self.bias


class TinyNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = TinyLinear(3, 4, rng)
        self.fc2 = TinyLinear(4, 2, rng)

    def forward(self, x):
        return self.fc2(F.relu(self.fc1(x)))


@pytest.fixture
def net():
    return TinyNet(np.random.default_rng(0))


class TestModule:
    def test_named_parameters_recursive_sorted(self, net):
        names = [n for n, _ in net.named_parameters()]
        assert names == ["fc1.bias", "fc1.weight", "fc2.bias", "fc2.weight"]

    def test_parameters_count(self, net):
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_zero_grad_recursive(self, net):
        x = Tensor(np.ones((2, 3)))
        net(x).sum().backward()
        assert all(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_recursive(self, net):
        net.eval()
        assert not net.training and not net.fc1.training
        net.train()
        assert net.training and net.fc2.training

    def test_named_modules(self, net):
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_state_dict_roundtrip(self, net):
        state = net.state_dict()
        other = TinyNet(np.random.default_rng(99))
        other.load_state_dict(state)
        x = Tensor(np.random.default_rng(1).normal(size=(5, 3)))
        np.testing.assert_allclose(net(x).data, other(x).data)

    def test_state_dict_is_a_copy(self, net):
        state = net.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not (net.fc1.weight.data == 0.0).all()

    def test_load_state_dict_missing_key(self, net):
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(ShapeError):
            net.load_state_dict(state)

    def test_load_state_dict_bad_shape(self, net):
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ShapeError):
            net.load_state_dict(state)


class TestOptimizers:
    def _quadratic_problem(self):
        # minimize ||Wx - y||^2 over W
        rng = np.random.default_rng(5)
        w = Parameter(rng.normal(size=(3, 2)))
        x = rng.normal(size=(20, 3))
        target = x @ rng.normal(size=(3, 2))
        return w, x, target

    def test_sgd_descends(self):
        w, x, target = self._quadratic_problem()
        opt = SGD([w], lr=0.05)
        losses = []
        for _ in range(50):
            opt.zero_grad()
            loss = F.mse_loss(Tensor(x) @ w, target)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.01

    def test_sgd_momentum_descends(self):
        w, x, target = self._quadratic_problem()
        opt = SGD([w], lr=0.02, momentum=0.9)
        for _ in range(120):
            opt.zero_grad()
            F.mse_loss(Tensor(x) @ w, target).backward()
            opt.step()
        final = F.mse_loss(Tensor(x) @ w, target).item()
        assert final < 1e-3

    def test_adam_descends(self):
        w, x, target = self._quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            F.mse_loss(Tensor(x) @ w, target).backward()
            opt.step()
        assert F.mse_loss(Tensor(x) @ w, target).item() < 1e-3

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.ones((4, 4)) * 10.0)
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        (Tensor(np.zeros((1, 4))) @ w).sum().backward()
        opt.step()
        assert (np.abs(w.data) < 10.0).all()

    def test_skips_params_without_grad(self):
        w = Parameter(np.ones(3))
        before = w.data.copy()
        SGD([w], lr=0.1).step()
        np.testing.assert_array_equal(w.data, before)

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ConfigError):
            Adam([Parameter(np.ones(1))], lr=-1.0)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ConfigError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.5)

    def test_bad_betas_rejected(self):
        with pytest.raises(ConfigError):
            Adam([Parameter(np.ones(1))], lr=0.1, betas=(1.5, 0.9))

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_no_clip_needed(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)


class TestInit:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((50, 30), rng)
        bound = np.sqrt(6.0 / 80)
        assert (np.abs(w) <= bound).all()
        assert w.std() > 0

    def test_xavier_normal_scale(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((400, 400), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 800), rel=0.1)

    def test_orthogonal_columns(self):
        rng = np.random.default_rng(0)
        w = init.orthogonal((6, 4), rng)
        np.testing.assert_allclose(w.T @ w, np.eye(4), atol=1e-10)

    def test_orthogonal_wide(self):
        rng = np.random.default_rng(0)
        w = init.orthogonal((3, 5), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(3), atol=1e-10)

    def test_deterministic_given_rng(self):
        a = init.xavier_uniform((4, 4), np.random.default_rng(7))
        b = init.xavier_uniform((4, 4), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((2, 2)), np.zeros((2, 2)))
