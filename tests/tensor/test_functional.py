"""Tests for activations and losses."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.tensor import Tensor, functional as F
from tests.helpers import check_gradients


def rng():
    return np.random.default_rng(42)


class TestActivations:
    def test_relu_values(self):
        x = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu(x).data, [0.0, 0.0, 2.0])

    def test_relu_gradient(self):
        x = Tensor(rng().normal(size=(4, 3)) + 0.1, requires_grad=True)
        check_gradients(lambda: F.relu(x).sum(), [x])

    def test_sigmoid_range_and_symmetry(self):
        x = Tensor(np.linspace(-30, 30, 13))
        s = F.sigmoid(x).data
        assert (s > 0).all() and (s < 1).all()
        np.testing.assert_allclose(s + s[::-1], np.ones_like(s), atol=1e-12)

    def test_sigmoid_gradient(self):
        x = Tensor(rng().normal(size=(5,)), requires_grad=True)
        check_gradients(lambda: F.sigmoid(x).sum(), [x])

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-1000.0, 1000.0])
        s = F.sigmoid(x).data
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s, [0.0, 1.0], atol=1e-12)

    def test_tanh_gradient(self):
        x = Tensor(rng().normal(size=(5,)), requires_grad=True)
        check_gradients(lambda: F.tanh(x).sum(), [x])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(rng().normal(size=(6, 4)))
        s = F.softmax(x).data
        np.testing.assert_allclose(s.sum(axis=1), np.ones(6), atol=1e-12)

    def test_softmax_shift_invariance(self):
        x = rng().normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_softmax_gradient(self):
        x = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        w = rng().normal(size=(3, 4))
        check_gradients(lambda: (F.softmax(x) * w).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(rng().normal(size=(3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12)

    def test_log_softmax_gradient(self):
        x = Tensor(rng().normal(size=(3, 4)), requires_grad=True)
        w = rng().normal(size=(3, 4))
        check_gradients(lambda: (F.log_softmax(x) * w).sum(), [x])


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[20.0, 0.0], [0.0, 20.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_log_c(self):
        logits = Tensor(np.zeros((5, 4)))
        loss = F.cross_entropy(logits, np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(4))

    def test_gradient(self):
        logits = Tensor(rng().normal(size=(6, 3)), requires_grad=True)
        labels = np.array([0, 1, 2, 0, 1, 2])
        check_gradients(lambda: F.cross_entropy(logits, labels), [logits])

    def test_rejects_1d_logits(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros(3)), np.zeros(3, dtype=int))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((3, 2))), np.zeros(4, dtype=int))

    def test_extreme_logits_finite(self):
        logits = Tensor(np.array([[1000.0, -1000.0]]))
        loss = F.cross_entropy(logits, np.array([1]))
        assert np.isfinite(loss.item())


class TestBCEWithLogits:
    def test_matches_reference(self):
        z = rng().normal(size=(7,))
        t = (rng().random(7) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(z), t)
        p = 1.0 / (1.0 + np.exp(-z))
        ref = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(ref, rel=1e-10)

    def test_gradient(self):
        z = Tensor(rng().normal(size=(5,)), requires_grad=True)
        t = np.array([1.0, 0.0, 1.0, 1.0, 0.0])
        check_gradients(
            lambda: F.binary_cross_entropy_with_logits(z, t), [z])

    def test_extreme_logits_finite(self):
        z = Tensor(np.array([1000.0, -1000.0]))
        t = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy_with_logits(z, t)
        assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            F.binary_cross_entropy_with_logits(
                Tensor(np.zeros(3)), np.zeros(4))


class TestMSE:
    def test_zero_for_equal(self):
        x = Tensor(np.ones(4))
        assert F.mse_loss(x, np.ones(4)).item() == 0.0

    def test_gradient(self):
        x = Tensor(rng().normal(size=(4, 2)), requires_grad=True)
        t = rng().normal(size=(4, 2))
        check_gradients(lambda: F.mse_loss(x, t), [x])


class TestPropertyBased:
    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=2,
                    max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_tanh_identity(self, vals):
        # tanh(x) = 2*sigmoid(2x) - 1
        x = np.array(vals)
        lhs = F.tanh(Tensor(x)).data
        rhs = 2 * F.sigmoid(Tensor(2 * x)).data - 1
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    @given(st.integers(2, 6), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_cross_entropy_nonnegative(self, n, c):
        g = np.random.default_rng(n * 100 + c)
        logits = Tensor(g.normal(size=(n, c)))
        labels = g.integers(0, c, size=n)
        assert F.cross_entropy(logits, labels).item() >= 0.0
