"""Tests for the core Tensor/tape machinery."""

import numpy as np
import pytest

from repro.errors import GradientError, ShapeError
from repro.tensor import Tensor, as_tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_from_tensor_shares_semantics(self):
        base = Tensor([1.0, 2.0])
        t = Tensor(base)
        np.testing.assert_array_equal(t.data, base.data)

    def test_default_no_grad(self):
        assert not Tensor([1.0]).requires_grad

    def test_nbytes(self):
        t = Tensor(np.zeros((4, 8)))
        assert t.nbytes == 4 * 8 * 8

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_coerces(self):
        t = as_tensor([1.0, 2.0])
        assert isinstance(t, Tensor)

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5


class TestBackwardBasics:
    def test_scalar_backward_default_grad(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x
        y.backward()
        assert x.grad == pytest.approx(4.0)

    def test_nonscalar_backward_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(GradientError):
            y.backward()

    def test_backward_wrong_shape_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ShapeError):
            y.backward(np.ones((3,)))

    def test_backward_on_no_grad_tensor(self):
        x = Tensor([1.0])
        with pytest.raises(GradientError):
            x.backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(3.0, requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        assert x.grad == pytest.approx(4.0)

    def test_zero_grad(self):
        x = Tensor(3.0, requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_dag_accumulation(self):
        # x used twice: y = x*x + x*x => dy/dx = 4x
        x = Tensor(3.0, requires_grad=True)
        y = x * x + x * x
        y.backward()
        assert x.grad == pytest.approx(12.0)

    def test_deep_chain(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(100):
            y = y * 1.01
        y.backward()
        assert x.grad == pytest.approx(1.01 ** 100, rel=1e-9)

    def test_intermediate_has_no_grad_by_default(self):
        x = Tensor(2.0, requires_grad=True)
        mid = x * 3.0
        (mid * 2.0).backward()
        assert mid.grad is None
        assert x.grad == pytest.approx(6.0)

    def test_retain_grad_populates_intermediate(self):
        x = Tensor(2.0, requires_grad=True)
        mid = (x * 3.0).retain_grad()
        (mid * 2.0).backward()
        assert mid.grad == pytest.approx(2.0)


class TestNoGrad:
    def test_flag_toggles(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_graph_recorded(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            y = x * x
        assert not y.requires_grad
        assert y.is_leaf

    def test_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_restored_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()


class TestDetachClone:
    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3.0).detach()
        z = y * 2.0
        assert not z.requires_grad

    def test_detach_shares_data(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        d = x.detach()
        assert d.data is x.data

    def test_clone_copies_data(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        c = x.clone()
        c.data[0] = 99.0
        assert x.data[0] == 1.0
        assert c.requires_grad


class TestOperatorSugar:
    def test_radd_rsub_rmul_rdiv(self):
        x = Tensor(4.0, requires_grad=True)
        y = 1.0 + x - 2.0
        z = 3.0 * x / 2.0
        w = 8.0 / x
        assert y.item() == pytest.approx(3.0)
        assert z.item() == pytest.approx(6.0)
        assert w.item() == pytest.approx(2.0)

    def test_pow(self):
        x = Tensor(3.0, requires_grad=True)
        y = x ** 2
        y.backward()
        assert x.grad == pytest.approx(6.0)

    def test_neg(self):
        x = Tensor(3.0, requires_grad=True)
        (-x).backward()
        assert x.grad == pytest.approx(-1.0)

    def test_T_property(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)
