"""Tests for SparseMatrix and the differentiable spmm kernels."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.tensor import Tensor
from repro.tensor.sparse import (INDEX_BYTES, VALUE_BYTES, SparseMatrix,
                                 spmm, spmm_rows)
from tests.helpers import all_backends_fixture, check_gradients

# every test in this module runs once per available kernel backend
kernel_backend = all_backends_fixture()


def random_sparse(n, m, density=0.3, seed=0):
    return SparseMatrix(sp.random(n, m, density=density, random_state=seed,
                                  dtype=np.float64))


class TestSparseMatrix:
    def test_from_dense(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        s = SparseMatrix(dense)
        assert s.nnz == 2
        assert s.shape == (2, 2)

    def test_from_scipy_coo(self):
        coo = sp.coo_matrix(([1.0], ([0], [1])), shape=(2, 2))
        s = SparseMatrix(coo)
        assert s.csr.format == "csr"

    def test_duplicates_summed(self):
        coo = sp.coo_matrix(([1.0, 2.0], ([0, 0], [1, 1])), shape=(2, 2))
        s = SparseMatrix(coo)
        assert s.nnz == 1
        assert s.csr[0, 1] == 3.0

    def test_wrap_sparsematrix(self):
        s = random_sparse(3, 3)
        s2 = SparseMatrix(s)
        assert s2.csr is s.csr

    def test_transpose(self):
        s = random_sparse(3, 5, seed=2)
        st_ = s.T
        assert st_.shape == (5, 3)
        np.testing.assert_allclose(st_.csr.toarray(), s.csr.toarray().T)

    def test_coo_edges_sorted_lexicographically(self):
        edges = np.array([[2, 1], [0, 3], [0, 1], [2, 0]])
        s = SparseMatrix.from_edges(edges, None, (4, 4))
        out = s.coo_edges()
        assert (np.lexsort((out[:, 1], out[:, 0])) == np.arange(len(out))).all()
        assert set(map(tuple, out)) == set(map(tuple, edges))

    def test_values_sorted_alignment(self):
        edges = np.array([[1, 0], [0, 2]])
        vals = np.array([7.0, 5.0])
        s = SparseMatrix.from_edges(edges, vals, (3, 3))
        e = s.coo_edges()
        v = s.values_sorted()
        # first sorted edge is (0,2) -> 5.0, then (1,0) -> 7.0
        np.testing.assert_array_equal(e, [[0, 2], [1, 0]])
        np.testing.assert_array_equal(v, [5.0, 7.0])

    def test_byte_accounting(self):
        s = random_sparse(10, 10, density=0.2, seed=3)
        assert s.index_nbytes == 2 * INDEX_BYTES * s.nnz
        assert s.value_nbytes == VALUE_BYTES * s.nnz
        assert s.nbytes == s.index_nbytes + s.value_nbytes

    def test_from_edges_default_values(self):
        edges = np.array([[0, 1], [1, 2]])
        s = SparseMatrix.from_edges(edges, None, (3, 3))
        np.testing.assert_array_equal(s.values_sorted(), [1.0, 1.0])

    def test_matmul_dense(self):
        s = random_sparse(4, 4, seed=5)
        x = np.ones((4, 2))
        np.testing.assert_allclose(s.matmul_dense(x), s.csr @ x)


class TestSpMM:
    def test_forward_matches_scipy(self):
        s = random_sparse(6, 4, seed=1)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        out = spmm(s, x)
        np.testing.assert_allclose(out.data, s.csr @ x.data)

    def test_gradient(self):
        s = random_sparse(5, 5, density=0.4, seed=7)
        x = Tensor(np.random.default_rng(1).normal(size=(5, 2)),
                   requires_grad=True)
        check_gradients(lambda: spmm(s, x).sum(), [x])

    def test_gradient_weighted_output(self):
        s = random_sparse(5, 5, density=0.4, seed=9)
        w = np.random.default_rng(2).normal(size=(5, 2))
        x = Tensor(np.random.default_rng(3).normal(size=(5, 2)),
                   requires_grad=True)
        check_gradients(lambda: (spmm(s, x) * w).sum(), [x])

    def test_shape_mismatch(self):
        s = random_sparse(3, 4)
        with pytest.raises(ShapeError):
            spmm(s, Tensor(np.zeros((3, 2))))

    def test_requires_2d(self):
        s = random_sparse(3, 3)
        with pytest.raises(ShapeError):
            spmm(s, Tensor(np.zeros(3)))

    @given(st.integers(2, 8), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_identity_spmm_is_identity(self, n, f):
        s = SparseMatrix(sp.eye(n, format="csr"))
        x = Tensor(np.random.default_rng(n * 10 + f).normal(size=(n, f)))
        np.testing.assert_allclose(spmm(s, x).data, x.data)

    @given(st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_spmm_linearity(self, n):
        s = random_sparse(n, n, density=0.5, seed=n)
        g = np.random.default_rng(n)
        x = Tensor(g.normal(size=(n, 2)))
        y = Tensor(g.normal(size=(n, 2)))
        left = spmm(s, x + y).data
        right = (spmm(s, x) + spmm(s, y)).data
        np.testing.assert_allclose(left, right, atol=1e-12)


class TestCachedTranspose:
    def test_transpose_built_at_most_once(self):
        """Regression: spmm used to rebuild ``csr.T.tocsr()`` on every
        call; the cached transpose must be materialized at most once
        per matrix however many forward/backward passes reuse it."""
        s = random_sparse(6, 6, density=0.4, seed=11)
        assert s.transpose_builds == 0
        for i in range(5):
            x = Tensor(np.random.default_rng(i).normal(size=(6, 2)),
                       requires_grad=True)
            spmm(s, x).sum().backward()
        assert s.transpose_builds == 1
        s.T  # explicit transposes reuse the same cache
        s.transpose()
        assert s.transpose_builds == 1

    def test_transpose_lazy_without_backward(self):
        s = random_sparse(4, 4, seed=3)
        spmm(s, Tensor(np.zeros((4, 2))))
        assert s.transpose_builds == 0  # forward-only: never built

    def test_transpose_of_transpose_shares_cache(self):
        s = random_sparse(3, 5, seed=2)
        t = s.T
        assert t.transposed_csr() is s.csr
        np.testing.assert_allclose(t.csr.toarray(), s.csr.toarray().T)

    def test_wrap_shares_cache(self):
        s = random_sparse(4, 4, seed=5)
        s.transposed_csr()
        s2 = SparseMatrix(s)
        assert s2.transposed_csr() is s.transposed_csr()
        # the build count travels with the cache: a copy that inherits
        # a built transpose reports that build instead of undercounting
        assert s2.transpose_builds == 1

    def test_wrap_carries_build_count_before_build(self):
        s = random_sparse(4, 4, seed=5)
        s2 = SparseMatrix(s)  # nothing built yet
        assert s2.transpose_builds == 0
        s2.transposed_csr()
        assert s2.transpose_builds == 1


class TestSpmmRows:
    def test_rows_bitwise_equal_full_product(self):
        s = random_sparse(20, 20, density=0.3, seed=4)
        x = np.random.default_rng(0).normal(size=(20, 5))
        rows = np.array([0, 3, 7, 19])
        full = spmm(s, Tensor(x)).data
        sliced = spmm_rows(s, Tensor(x), rows).data
        # same per-row accumulation order: bit-identical, not just close
        np.testing.assert_array_equal(sliced, full[rows])

    def test_row_slice_matches_scipy(self):
        s = random_sparse(10, 10, density=0.3, seed=8)
        rows = np.array([2, 2, 5])  # duplicates allowed, order kept
        np.testing.assert_allclose(s.row_slice(rows).toarray(),
                                   s.csr[rows].toarray())

    def test_gradient(self):
        s = random_sparse(6, 6, density=0.4, seed=13)
        rows = np.array([1, 4, 5])
        x = Tensor(np.random.default_rng(5).normal(size=(6, 3)),
                   requires_grad=True)
        check_gradients(lambda: spmm_rows(s, x, rows).sum(), [x])

    def test_gradient_scatters_through_slice(self):
        """dL/dX must equal S.T @ scatter(g): rows not requested get
        gradient only through the sliced operator."""
        s = random_sparse(5, 5, density=0.5, seed=17)
        rows = np.array([0, 2])
        x = Tensor(np.random.default_rng(7).normal(size=(5, 2)),
                   requires_grad=True)
        out = spmm_rows(s, x, rows)
        out.sum().backward()
        g_full = np.zeros((5, 2))
        g_full[rows] = 1.0
        expected = s.csr.toarray().T @ g_full
        np.testing.assert_allclose(x.grad, expected, atol=1e-12)

    def test_empty_rows(self):
        s = random_sparse(4, 4, seed=1)
        out = spmm_rows(s, Tensor(np.ones((4, 2))),
                        np.empty(0, dtype=np.int64))
        assert out.data.shape == (0, 2)

    def test_out_of_range_rows_rejected(self):
        s = random_sparse(3, 3)
        with pytest.raises(ShapeError):
            spmm_rows(s, Tensor(np.zeros((3, 2))), np.array([3]))
        with pytest.raises(ShapeError):
            spmm_rows(s, Tensor(np.zeros((3, 2))), np.array([-1]))

    def test_shape_mismatch(self):
        s = random_sparse(3, 4)
        with pytest.raises(ShapeError):
            spmm_rows(s, Tensor(np.zeros((3, 2))), np.array([0]))
