"""The conformance contract, kernel by kernel.

Every *available* backend is checked against the reference backend on
every kernel of :data:`~repro.tensor.backend.KERNEL_NAMES`, across both
CSR index dtypes (scipy emits int32 below the int32 nnz limit; the
store/exec tiers hand the kernels int64):

* kernels a backend declares in ``exact`` must be **bit-identical**
  (``array_equal``) to reference;
* everything else must agree elementwise within 1e-12.

tests/graph/test_inc_laplacian.py doubles as the end-to-end conformance
suite for the maintainer primitives (it is parametrized over all
backends and asserts divergence 0.0 against full rebuilds); this module
pins the primitive-level contract directly.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor.backend import (KERNEL_NAMES, available_backends,
                                  get_backend)

INDEX_DTYPES = (np.int32, np.int64)


def _csr(n=400, m=300, density=0.02, seed=0, index_dtype=np.int64):
    csr = sp.random(n, m, density=density, random_state=seed,
                    dtype=np.float64).tocsr()
    csr.sort_indices()
    csr.indptr = csr.indptr.astype(index_dtype)
    csr.indices = csr.indices.astype(index_dtype)
    return csr


def _rows(n, seed=1):
    rng = np.random.default_rng(seed)
    # unsorted on purpose: the serving frontier arrives sorted, but the
    # kernel contract does not require it
    return rng.permutation(n)[:max(1, n // 5)].astype(np.int64)


def _assert_matches(kb, kernel, got, want):
    if kernel in kb.exact:
        np.testing.assert_array_equal(got, want)
    else:
        np.testing.assert_allclose(got, want, rtol=0.0, atol=1e-12)


@pytest.fixture(params=available_backends())
def kb(request):
    return get_backend(request.param)


def test_kernel_names_cover_the_surface():
    assert set(KERNEL_NAMES) == {
        "spmm", "spmm_rows", "spmm_rows_t", "transpose", "row_slice",
        "degree_counts", "splice_delete", "splice_insert", "rescale"}


@pytest.mark.parametrize("index_dtype", INDEX_DTYPES)
def test_spmm(kb, index_dtype):
    ref = get_backend("reference")
    csr = _csr(index_dtype=index_dtype)
    x = np.random.default_rng(2).standard_normal((csr.shape[1], 7))
    _assert_matches(kb, "spmm", kb.spmm(csr, x), ref.spmm(csr, x))


@pytest.mark.parametrize("index_dtype", INDEX_DTYPES)
def test_spmm_rows_and_backward(kb, index_dtype):
    ref = get_backend("reference")
    csr = _csr(index_dtype=index_dtype)
    rows = _rows(csr.shape[0])
    x = np.random.default_rng(3).standard_normal((csr.shape[1], 5))
    g = np.random.default_rng(4).standard_normal((len(rows), 5))

    out, ctx = kb.spmm_rows(csr, rows, x)
    want, ref_ctx = ref.spmm_rows(csr, rows, x)
    _assert_matches(kb, "spmm_rows", out, want)

    bwd = kb.spmm_rows_t(csr, rows, g, ctx)
    want_bwd = ref.spmm_rows_t(csr, rows, g, ref_ctx)
    _assert_matches(kb, "spmm_rows_t", bwd, want_bwd)
    # the ctx-free path must agree with the ctx path
    _assert_matches(kb, "spmm_rows_t", kb.spmm_rows_t(csr, rows, g, None),
                    bwd)


@pytest.mark.parametrize("index_dtype", INDEX_DTYPES)
def test_transpose_and_row_slice(kb, index_dtype):
    ref = get_backend("reference")
    csr = _csr(index_dtype=index_dtype)
    got_t, want_t = kb.transpose(csr), ref.transpose(csr)
    np.testing.assert_array_equal(got_t.indptr, want_t.indptr)
    np.testing.assert_array_equal(got_t.indices, want_t.indices)
    np.testing.assert_array_equal(got_t.data, want_t.data)

    rows = _rows(csr.shape[0], seed=5)
    got_s, want_s = kb.row_slice(csr, rows), ref.row_slice(csr, rows)
    np.testing.assert_array_equal(got_s.indptr, want_s.indptr)
    np.testing.assert_array_equal(got_s.indices, want_s.indices)
    np.testing.assert_array_equal(got_s.data, want_s.data)


def test_degree_counts(kb):
    ref = get_backend("reference")
    vertices = np.random.default_rng(6).integers(0, 50, size=300)
    np.testing.assert_array_equal(kb.degree_counts(vertices, 50),
                                  ref.degree_counts(vertices, 50))


def test_splice_delete_and_insert(kb):
    ref = get_backend("reference")
    rng = np.random.default_rng(7)
    keys = np.sort(rng.choice(10_000, size=200, replace=False))
    arrays = (keys, rng.standard_normal(200), rng.standard_normal(200),
              rng.integers(0, 100, size=200))

    pos = np.sort(rng.choice(200, size=40, replace=False))
    got = kb.splice_delete(arrays, pos)
    want = ref.splice_delete(arrays, pos)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w)

    new_keys = np.sort(rng.choice(
        np.setdiff1d(np.arange(10_000), keys), size=30, replace=False))
    ins = np.searchsorted(keys, new_keys).astype(np.int64)
    extras = (new_keys, rng.standard_normal(30), np.zeros(30),
              rng.integers(0, 100, size=30))
    got_arrays, got_pos = kb.splice_insert(arrays, ins, extras)
    want_arrays, want_pos = ref.splice_insert(arrays, ins, extras)
    np.testing.assert_array_equal(got_pos, want_pos)
    for g, w in zip(got_arrays, want_arrays):
        np.testing.assert_array_equal(g, w)
    # the merged key stream is sorted with the new entries at new_pos
    np.testing.assert_array_equal(np.sort(got_arrays[0]), got_arrays[0])
    np.testing.assert_array_equal(got_arrays[0][got_pos], new_keys)


@pytest.mark.parametrize("index_dtype", INDEX_DTYPES)
def test_rescale(kb, index_dtype):
    ref = get_backend("reference")
    csr = _csr(n=100, m=100, density=0.05, seed=8,
               index_dtype=index_dtype)
    rng = np.random.default_rng(9)
    w = rng.standard_normal(csr.nnz)
    dinv = rng.standard_normal(100) ** 2 + 0.1
    pos = np.sort(rng.choice(csr.nnz, size=csr.nnz // 3, replace=False))

    got = csr.data.copy()
    kb.rescale(got, w, csr.indices.astype(np.int64), csr.indptr, pos,
               dinv)
    want = csr.data.copy()
    ref.rescale(want, w, csr.indices.astype(np.int64), csr.indptr, pos,
                dinv)
    np.testing.assert_array_equal(got, want)
    # untouched positions keep their original bits
    keep = np.ones(csr.nnz, dtype=bool)
    keep[pos] = False
    np.testing.assert_array_equal(got[keep], csr.data[keep])
