"""Tests for the three dynamic-GNN architectures and the block protocol."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import evolving_dtdg, normalized_laplacian
from repro.models import (CDGCN, EvolveGCN, MODEL_NAMES, TMGCN, build_model,
                          detach_carry)
from repro.tensor import Tensor
from repro.tensor import functional as F


N, T, F_IN = 12, 6, 2


@pytest.fixture(scope="module")
def workload():
    dtdg = evolving_dtdg(N, T, 30, churn=0.2, seed=0)
    laps = [normalized_laplacian(s) for s in dtdg.snapshots]
    g = np.random.default_rng(1)
    frames = [Tensor(g.normal(size=(N, F_IN))) for _ in range(T)]
    return laps, frames


ALL_MODELS = [
    lambda: TMGCN(F_IN, hidden=4, embed_dim=3, num_layers=2, window=3,
                  rng=np.random.default_rng(0)),
    lambda: CDGCN(F_IN, hidden=4, embed_dim=3, num_layers=2,
                  rng=np.random.default_rng(0)),
    lambda: EvolveGCN(F_IN, hidden=4, embed_dim=3, num_layers=2,
                      rng=np.random.default_rng(0)),
]


@pytest.mark.parametrize("factory", ALL_MODELS,
                         ids=["tmgcn", "cdgcn", "egcn"])
class TestCommonProtocol:
    def test_forward_shapes(self, factory, workload):
        laps, frames = workload
        model = factory()
        outs = model(laps, frames)
        assert len(outs) == T
        for z in outs:
            assert z.shape == (N, 3)

    def test_blockwise_equals_monolithic(self, factory, workload):
        """The carry protocol must make split execution exact (paper §3.1:
        checkpointed re-execution reproduces the forward pass)."""
        laps, frames = workload
        model = factory()
        full = model(laps, frames)
        carry = model.init_carry(N)
        outs_a, carry = model.forward_block(laps[:2], frames[:2], carry)
        outs_b, carry = model.forward_block(laps[2:5], frames[2:5], carry)
        outs_c, _ = model.forward_block(laps[5:], frames[5:], carry)
        rejoined = outs_a + outs_b + outs_c
        for got, want in zip(rejoined, full):
            np.testing.assert_allclose(got.data, want.data, atol=1e-10)

    def test_gradients_reach_all_parameters(self, factory, workload):
        laps, frames = workload
        model = factory()
        outs = model(laps, frames)
        total = outs[0].sum()
        for z in outs[1:]:
            total = total + z.sum()
        total.backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, f"no grad for {name}"

    def test_empty_timeline(self, factory, workload):
        model = factory()
        assert model([], []) == []

    def test_mismatched_inputs_rejected(self, factory, workload):
        laps, frames = workload
        model = factory()
        with pytest.raises(ConfigError):
            model(laps[:2], frames[:3])

    def test_flop_model_positive(self, factory, workload):
        model = factory()
        sparse, dense = model.gcn_flops_per_step(nnz=100, rows=N)
        assert sparse > 0 and dense > 0
        assert model.rnn_flops_per_step(N) > 0
        assert model.activation_bytes_per_step(N) > 0

    def test_detached_carry_cuts_graph(self, factory, workload):
        laps, frames = workload
        model = factory()
        carry = model.init_carry(N)
        _, carry = model.forward_block(laps[:3], frames[:3], carry)
        detached = detach_carry(carry)

        def assert_leaf(obj):
            if isinstance(obj, Tensor):
                assert obj.is_leaf and not obj.requires_grad
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    assert_leaf(item)

        assert_leaf(detached)


class TestCDGCNSpecifics:
    def test_skip_concat_width(self):
        model = CDGCN(F_IN, hidden=4, embed_dim=3, num_layers=2,
                      rng=np.random.default_rng(0))
        assert model.gcn_layer(0).output_dim == F_IN + 4
        # second layer consumes the first LSTM's output width (4)
        assert model.gcn_layer(1).in_features == 4

    def test_invalid_layers(self):
        with pytest.raises(ConfigError):
            CDGCN(F_IN, num_layers=0)

    def test_temporal_dependence(self, ):
        """Shuffling earlier frames must change later outputs (LSTM)."""
        dtdg = evolving_dtdg(N, 4, 24, churn=0.2, seed=3)
        laps = [normalized_laplacian(s) for s in dtdg.snapshots]
        g = np.random.default_rng(2)
        frames = [Tensor(g.normal(size=(N, F_IN))) for _ in range(4)]
        model = CDGCN(F_IN, hidden=4, embed_dim=3,
                      rng=np.random.default_rng(0))
        base = model(laps, frames)[3].data.copy()
        frames2 = list(frames)
        frames2[0] = Tensor(frames[0].data + 1.0)
        changed = model(laps, frames2)[3].data
        assert not np.allclose(base, changed)


class TestTMGCNSpecifics:
    def test_window_validation(self):
        with pytest.raises(ConfigError):
            TMGCN(F_IN, window=0)

    def test_carry_is_frame_history(self, workload):
        laps, frames = workload
        model = TMGCN(F_IN, hidden=4, embed_dim=3, window=3,
                      rng=np.random.default_rng(0))
        carry = model.init_carry(N)
        _, carry = model.forward_block(laps[:4], frames[:4], carry)
        for layer_hist in carry:
            assert len(layer_hist) == 2  # window - 1 frames

    def test_window_smooths_outputs(self, workload):
        """Larger windows average more: outputs vary less across time."""
        laps, frames = workload

        def variation(window):
            model = TMGCN(F_IN, hidden=4, embed_dim=3, window=window,
                          rng=np.random.default_rng(0))
            outs = model(laps, frames)
            diffs = [np.abs(outs[t + 1].data - outs[t].data).mean()
                     for t in range(T - 1)]
            return np.mean(diffs[2:])  # skip warm-up steps

        assert variation(5) < variation(1)


class TestEvolveGCNSpecifics:
    def test_weights_evolve_over_time(self):
        model = EvolveGCN(F_IN, hidden=4, embed_dim=3,
                          rng=np.random.default_rng(0))
        state = model.weight_init(0)
        weights, _ = model.evolve_weights(0, 3, state)
        assert len(weights) == 3
        assert not np.allclose(weights[0].data, weights[1].data)

    def test_gradient_nbytes_small(self):
        model = EvolveGCN(F_IN, hidden=4, embed_dim=3,
                          rng=np.random.default_rng(0))
        # "the weight matrices are small": well under a typical frame
        assert model.gradient_nbytes() < 8 * 10000 * 3

    def test_rnn_flops_independent_of_rows(self):
        model = EvolveGCN(F_IN, hidden=4, embed_dim=3,
                          rng=np.random.default_rng(0))
        assert model.rnn_flops_per_step(10) == model.rnn_flops_per_step(10000)


class TestRegistry:
    def test_all_names_buildable(self):
        for name in MODEL_NAMES:
            model = build_model(name, in_features=2, seed=0)
            assert model.num_layers == 2
            assert model.embed_dim == 6

    def test_alias(self):
        assert isinstance(build_model("evolvegcn"), EvolveGCN)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            build_model("gat")

    def test_seed_reproducibility(self):
        a = build_model("cdgcn", seed=7)
        b = build_model("cdgcn", seed=7)
        for (na, pa), (nb, pb) in zip(a.named_parameters(),
                                      b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)


class TestEndToEndTraining:
    """A small learning sanity check: the models can fit a toy signal."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_loss_decreases(self, name):
        from repro.tensor import Adam
        dtdg = evolving_dtdg(16, 4, 40, churn=0.1, seed=5)
        laps = [normalized_laplacian(s) for s in dtdg.snapshots]
        g = np.random.default_rng(3)
        frames = [Tensor(g.normal(size=(16, 2))) for _ in range(4)]
        labels = g.integers(0, 2, size=16)
        model = build_model(name, in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        from repro.nn import Linear
        head = Linear(4, 2, np.random.default_rng(1))
        params = model.parameters() + head.parameters()
        opt = Adam(params, lr=0.02)
        losses = []
        for _ in range(25):
            opt.zero_grad()
            outs = model(laps, frames)
            loss = F.cross_entropy(head(outs[-1]), labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
