"""Tests for GCN/LSTM/M-transform/linear building blocks."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import GraphSnapshot, normalized_laplacian
from repro.nn import (EdgeScorer, GCNLayer, Linear, LSTMCell, WeightLSTMCell,
                      m_matrix, m_transform_frames)
from repro.tensor import Tensor
from tests.helpers import check_gradients


def rng():
    return np.random.default_rng(0)


def small_laplacian(n=6, seed=0):
    g = np.random.default_rng(seed)
    edges = g.integers(0, n, size=(2 * n, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    return normalized_laplacian(GraphSnapshot(n, edges))


class TestLinear:
    def test_shapes(self):
        lin = Linear(3, 5, rng())
        out = lin(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 5)

    def test_no_bias(self):
        lin = Linear(3, 5, rng(), bias=False)
        assert len(lin.parameters()) == 1
        out = lin(Tensor(np.zeros((2, 3))))
        np.testing.assert_array_equal(out.data, np.zeros((2, 5)))

    def test_gradient_through(self):
        lin = Linear(3, 2, rng())
        x = Tensor(rng().normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda: lin(x).sum(), [x, lin.weight, lin.bias])

    def test_flops(self):
        assert Linear(3, 5, rng()).flops(10) == 2 * 10 * 3 * 5


class TestEdgeScorer:
    def test_scores_pairs(self):
        scorer = EdgeScorer(4, 2, rng())
        z = Tensor(rng().normal(size=(6, 4)))
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        logits = scorer(z, pairs)
        assert logits.shape == (3, 2)

    def test_concat_order_matters(self):
        scorer = EdgeScorer(2, 2, rng())
        z = Tensor(rng().normal(size=(3, 2)))
        fwd = scorer(z, np.array([[0, 1]])).data
        rev = scorer(z, np.array([[1, 0]])).data
        assert not np.allclose(fwd, rev)

    def test_gradients_flow_to_embeddings(self):
        scorer = EdgeScorer(3, 2, rng())
        z = Tensor(rng().normal(size=(4, 3)), requires_grad=True)
        out = scorer(z, np.array([[0, 1], [2, 3]])).sum()
        out.backward()
        assert z.grad is not None
        assert np.abs(z.grad).sum() > 0


class TestGCNLayer:
    def test_plain_output_shape(self):
        lap = small_laplacian()
        gcn = GCNLayer(3, 5, rng())
        out = gcn(lap, Tensor(np.ones((6, 3))))
        assert out.shape == (6, 5)
        assert gcn.output_dim == 5

    def test_skip_concat_widens_output(self):
        lap = small_laplacian()
        gcn = GCNLayer(3, 5, rng(), skip_concat=True)
        out = gcn(lap, Tensor(np.ones((6, 3))))
        assert out.shape == (6, 8)
        assert gcn.output_dim == 8

    def test_relu_applied(self):
        lap = small_laplacian()
        gcn = GCNLayer(3, 5, rng())
        out = gcn(lap, Tensor(rng().normal(size=(6, 3))))
        assert (out.data >= 0).all()

    def test_no_activation_option(self):
        lap = small_laplacian()
        gcn = GCNLayer(3, 5, rng(), activation="none")
        out = gcn(lap, Tensor(rng().normal(size=(6, 3))))
        assert (out.data < 0).any()

    def test_bad_activation(self):
        with pytest.raises(ValueError):
            GCNLayer(3, 5, rng(), activation="gelu")

    def test_precomputed_path_matches_forward(self):
        from repro.tensor.sparse import spmm
        lap = small_laplacian()
        gcn = GCNLayer(3, 5, rng())
        x = Tensor(rng().normal(size=(6, 3)))
        direct = gcn(lap, x)
        pre = gcn.forward_precomputed(spmm(lap, x))
        np.testing.assert_allclose(direct.data, pre.data)

    def test_forward_with_weight_uses_external(self):
        lap = small_laplacian()
        gcn = GCNLayer(3, 5, rng())
        x = Tensor(rng().normal(size=(6, 3)))
        w_ext = Tensor(np.zeros((3, 5)))
        out = gcn.forward_with_weight(lap, x, w_ext)
        np.testing.assert_array_equal(out.data, np.zeros((6, 5)))

    def test_gradient_through_gcn(self):
        lap = small_laplacian()
        gcn = GCNLayer(3, 4, rng(), skip_concat=True)
        x = Tensor(rng().normal(size=(6, 3)), requires_grad=True)
        check_gradients(lambda: gcn(lap, x).sum(), [x, gcn.weight],
                        rtol=1e-4, atol=1e-6)

    def test_flops(self):
        gcn = GCNLayer(3, 5, rng())
        sparse, dense = gcn.flops(nnz=20, rows=6)
        assert sparse == 2 * 20 * 3
        assert dense == 2 * 6 * 3 * 5


class TestLSTMCell:
    def test_step_shapes(self):
        cell = LSTMCell(4, 3, rng())
        h, c = cell.init_state(5)
        y, (h2, c2) = cell(Tensor(np.ones((5, 4))), (h, c))
        assert y.shape == (5, 3) and h2.shape == (5, 3) and c2.shape == (5, 3)

    def test_output_is_hidden(self):
        cell = LSTMCell(4, 3, rng())
        y, (h, _) = cell(Tensor(np.ones((2, 4))), cell.init_state(2))
        np.testing.assert_array_equal(y.data, h.data)

    def test_state_propagates(self):
        cell = LSTMCell(2, 2, rng())
        x = Tensor(np.ones((1, 2)))
        _, s1 = cell(x, cell.init_state(1))
        y2a, _ = cell(x, s1)
        y2b, _ = cell(x, cell.init_state(1))
        assert not np.allclose(y2a.data, y2b.data)

    def test_run_sequence(self):
        cell = LSTMCell(2, 3, rng())
        xs = [Tensor(rng().normal(size=(4, 2))) for _ in range(5)]
        outs, state = cell.run_sequence(xs)
        assert len(outs) == 5
        assert state[0].shape == (4, 3)

    def test_forget_bias_initialized(self):
        cell = LSTMCell(2, 3, rng())
        np.testing.assert_array_equal(cell.bias.data[3:6], np.ones(3))

    def test_gradient_through_two_steps(self):
        cell = LSTMCell(2, 2, rng())
        x1 = Tensor(rng().normal(size=(3, 2)), requires_grad=True)
        x2 = Tensor(rng().normal(size=(3, 2)), requires_grad=True)

        def f():
            _, s = cell(x1, cell.init_state(3))
            y, _ = cell(x2, s)
            return y.sum()

        check_gradients(f, [x1, x2], rtol=1e-4, atol=1e-6)

    def test_bounded_outputs(self):
        cell = LSTMCell(3, 4, rng())
        xs = [Tensor(rng().normal(size=(5, 3)) * 100) for _ in range(3)]
        outs, _ = cell.run_sequence(xs)
        for y in outs:
            assert (np.abs(y.data) <= 1.0 + 1e-12).all()


class TestWeightLSTM:
    def test_initial_hidden_is_weight(self):
        from repro.tensor import Parameter
        cell = WeightLSTMCell(3, rng())
        w0 = Parameter(rng().normal(size=(4, 3)))
        h, c = cell.init_state(w0)
        assert h is w0
        np.testing.assert_array_equal(c.data, np.zeros((4, 3)))

    def test_evolution_changes_weight(self):
        from repro.tensor import Parameter
        cell = WeightLSTMCell(3, rng())
        w0 = Parameter(rng().normal(size=(4, 3)))
        state = cell.init_state(w0)
        w1, state = cell(state)
        w2, _ = cell(state)
        assert not np.allclose(w1.data, w0.data)
        assert not np.allclose(w2.data, w1.data)
        assert w1.shape == w0.shape


class TestMTransform:
    def test_m_matrix_rows_sum_to_one(self):
        m = m_matrix(8, 3)
        np.testing.assert_allclose(m.sum(axis=1), np.ones(8))

    def test_m_matrix_band_structure(self):
        m = m_matrix(6, 3)
        assert m[5, 2] == 0.0           # outside window
        assert m[5, 3] == pytest.approx(1 / 3)
        assert m[0, 0] == 1.0           # first step averages only itself
        assert np.triu(m, k=1).sum() == 0.0  # lower triangular

    def test_m_matrix_bad_window(self):
        with pytest.raises(ConfigError):
            m_matrix(4, 0)

    def test_frames_match_matrix_form(self):
        t_steps, n, f, w = 7, 4, 3, 3
        g = rng()
        frames = [Tensor(g.normal(size=(n, f))) for _ in range(t_steps)]
        outs, _ = m_transform_frames(frames, w)
        m = m_matrix(t_steps, w)
        stacked = np.stack([fr.data for fr in frames])
        expected = np.einsum("tk,knf->tnf", m, stacked)
        for t in range(t_steps):
            np.testing.assert_allclose(outs[t].data, expected[t],
                                       atol=1e-12)

    def test_window_one_is_identity(self):
        frames = [Tensor(rng().normal(size=(3, 2))) for _ in range(4)]
        outs, hist = m_transform_frames(frames, 1)
        for got, want in zip(outs, frames):
            np.testing.assert_array_equal(got.data, want.data)
        assert hist == []

    def test_history_carry_matches_contiguous_run(self):
        t_steps, w = 8, 4
        g = rng()
        frames = [Tensor(g.normal(size=(3, 2))) for _ in range(t_steps)]
        full, _ = m_transform_frames(frames, w)
        first, hist = m_transform_frames(frames[:5], w)
        second, _ = m_transform_frames(frames[5:], w, history=hist)
        rejoined = first + second
        for got, want in zip(rejoined, full):
            np.testing.assert_allclose(got.data, want.data, atol=1e-12)

    def test_history_length_bounded(self):
        frames = [Tensor(np.zeros((2, 2))) for _ in range(10)]
        _, hist = m_transform_frames(frames, 4)
        assert len(hist) == 3

    def test_gradient_through_transform(self):
        g = rng()
        frames = [Tensor(g.normal(size=(2, 2)), requires_grad=True)
                  for _ in range(3)]

        def f():
            outs, _ = m_transform_frames(frames, 2)
            total = outs[0].sum()
            for o in outs[1:]:
                total = total + o.sum()
            return total

        check_gradients(f, frames)
