"""Distributed telemetry over the RPC boundary.

Both backends serve the same worker telemetry through the same
``telemetry`` verb: deterministic worker counters must match bit for
bit after an identical replay, worker-side spans must stitch back under
the router's ``exec.rpc`` spans, and with tracing off (the default) the
wire must carry no trace envelope and the workers must open no spans.
"""

import numpy as np
import pytest

from repro.exec import ExecRouter
from repro.models import build_model
from repro.nn.linear import Linear
from repro.obs import Telemetry
from repro.serve import events_between

BACKENDS = ["simulated", "multiprocess"]


def make_router(world, backend, *, tracing=False, **kwargs):
    model = build_model("cdgcn", in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    kwargs.setdefault("num_shards", 2)
    return ExecRouter(model, world.dtdg[0], backend=backend,
                      fraud_head=fraud, max_batch_size=8,
                      telemetry=Telemetry(tracing=tracing), **kwargs)


def replay(router, world, *, stop=None):
    dtdg = world.dtdg
    stop = dtdg.num_timesteps if stop is None else stop
    for t in range(1, stop):
        router.ingest_events(events_between(dtdg[t - 1], dtdg[t]))
        router.submit_link(0, 119)
        router.submit_fraud(3 * t % 120)
        router.drain()
        router.advance_time(dtdg[t])


def harvested_worker_series(router) -> dict:
    """Every deterministic harvested worker series, keyed by
    (family, labels).  Excluded: ``worker_busy_seconds`` (a wall
    clock) and the ``embedding_rows`` verb — the multiprocess backend
    satisfies embedding reads from shared memory, so that verb's RPC
    counts legitimately differ from the simulated oracle's."""
    out = {}
    for name, kind, _help, series in router.telemetry.registry.families():
        if not name.startswith("worker_") or name == "worker_busy_seconds":
            continue
        for labels, metric in series:
            if labels.get("verb") == "embedding_rows":
                continue
            value = metric.count if kind == "histogram" else metric.value
            out[(name, tuple(sorted(labels.items())))] = value
    return out


def test_cross_backend_harvest_parity(world):
    """Identical full-stream replay on both backends, one harvest each:
    every deterministic worker counter matches exactly."""
    sim = make_router(world, "simulated")
    replay(sim, world)
    sim.harvest_telemetry()
    sim_series = harvested_worker_series(sim)
    sim.close()

    mp = make_router(world, "multiprocess")
    replay(mp, world)
    mp.harvest_telemetry()
    mp_series = harvested_worker_series(mp)
    mp.close()

    assert sim_series, "harvest produced no worker series"
    # real work happened and was counted per worker
    assert sim_series[("worker_rows_advanced_total",
                       (("worker", "0"),))] > 0
    assert sim_series == mp_series


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_spans_stitch_under_exec_rpc(world, backend):
    """After a harvest, every exec.rpc span holds one worker.rpc child
    per shard it fanned out to, carrying the router's trace_id, a
    worker-namespaced span id, and the worker.<verb> span inside."""
    router = make_router(world, backend, tracing=True)
    replay(router, world, stop=4)
    router.harvest_telemetry()
    tracer = router.telemetry.tracer

    exec_rpcs = [span for root in tracer.roots
                 for _, span in root.walk() if span.name == "exec.rpc"]
    assert exec_rpcs
    for span in exec_rpcs:
        workers = [c for c in span.children if c.name == "worker.rpc"]
        assert len(workers) == span.attrs["shards"]
        for w in workers:
            assert w.trace_id == span.trace_id
            assert w.parent_id == span.span_id
            assert w.span_id.startswith("worker")
            assert [c.name for c in w.children] == \
                [f"worker.{span.attrs['method']}"]
    router.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_tracing_off_means_no_envelope_and_no_spans(world, backend):
    router = make_router(world, backend)  # tracing off: the default
    replay(router, world, stop=3)
    # the transport would carry a context if there were one to carry
    assert router.transports[0].tracer is router.telemetry.tracer
    assert router.transports[0]._trace_context() is None
    # the workers never opened a span
    for transport in router.transports:
        _harvest, spans = transport.telemetry()
        assert spans == []
    assert not list(router.telemetry.tracer.roots)
    router.close()


def test_trace_context_only_inside_open_span(world):
    """The envelope exists exactly when tracing is on AND a span is
    open — the zero-allocation contract of the disabled hot path."""
    router = make_router(world, "simulated", tracing=True)
    transport = router.transports[0]
    assert transport._trace_context() is None  # no span open
    with router.telemetry.trace("exec.rpc") as span:
        assert transport._trace_context() == (span.trace_id,
                                              span.span_id)
    assert transport._trace_context() is None
    router.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_stats_break_down_per_verb(world, backend):
    router = make_router(world, backend)
    replay(router, world, stop=3)
    stats = router.transports[0].worker_stats()
    # one apply_delta per commit, one finish_advance per advance
    # (including the boot-time prime) reach every shard
    assert stats.rpc_calls["apply_delta"] == router.counters.commits == 2
    assert stats.rpc_calls["finish_advance"] == \
        router.counters.advances == 3
    # payload bytes measured by payload_nbytes: deltas carry arrays,
    # finish_advance carries nothing
    assert stats.rpc_payload_bytes["apply_delta"] > 0
    assert stats.rpc_payload_bytes["finish_advance"] == 0
    router.close()


def test_repeat_harvest_does_not_double_count(world):
    """harvest_telemetry at any cadence: deltas are merged exactly
    once, so idle harvests leave the cluster counters unchanged."""
    router = make_router(world, "simulated")
    replay(router, world, stop=4)
    router.harvest_telemetry()
    reg = router.telemetry.registry
    baseline = reg.value("worker_rows_advanced_total", worker="0")
    assert baseline > 0
    for _ in range(3):
        router.harvest_telemetry()
    assert reg.value("worker_rows_advanced_total", worker="0") == baseline
    router.close()


def test_router_exports_cover_the_cluster(world):
    """prometheus()/dashboard() on the router trigger the harvest and
    expose worker series and SLO verdicts in one place."""
    router = make_router(world, "simulated")
    replay(router, world, stop=4)
    slo = router.attach_slo(window=10)
    slo.ratio("shed-rate", "serve_queries_shed_total",
              "serve_queries_submitted_total", threshold=0.5)
    text = router.prometheus()
    assert 'worker_rpc_calls_total{verb="refresh",worker="0"}' in text
    assert 'worker_rpc_calls_total{verb="refresh",worker="1"}' in text
    out = router.dashboard()
    assert out.startswith("== ExecRouter dashboard ==")
    assert "rpc_p50ms" in out     # per-worker table rendered
    assert "shed-rate" in out     # SLO section rendered
    assert "[ok]" in out
    router.close()
