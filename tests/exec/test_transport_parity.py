"""Oracle-vs-real parity: both backends must agree bit for bit.

The simulated backend runs today's deterministic in-process tier; the
multiprocessing backend reconstructs every worker's state from shared
topology + piped GD deltas in separate processes.  The chain that makes
them identical — canonical snapshot reconstruction via ``apply_diff``
(checksum-verified), deterministic feature derivation, fp64 pickling,
exact shared-memory reads — is the subsystem's core claim, so the
divergence asserted here is **0.0**, not a tolerance.
"""

import numpy as np
import pytest

from repro.exec import ExecRouter
from repro.models import build_model
from repro.nn.linear import Linear
from repro.serve import ShardedServer, events_between

MODELS = ["cdgcn", "egcn", "tmgcn"]


def replay(router_or_server, world, *, start=1, stop=None):
    """Drive the full 20-timestep stream; returns (scores, embeddings)."""
    dtdg = world.dtdg
    stop = dtdg.num_timesteps if stop is None else stop
    scores = []
    for t in range(start, stop):
        events = events_between(dtdg[t - 1], dtdg[t])
        half = len(events) // 2
        if half:
            router_or_server.ingest_events(events[:half])
        q1 = router_or_server.submit_link(0, 119)
        q2 = router_or_server.submit_fraud(3 * t % 120)
        router_or_server.drain()
        scores += [q1.result, q2.result]
        if events[half:]:
            router_or_server.ingest_events(events[half:])
        router_or_server.advance_time(dtdg[t])
    return np.array(scores), router_or_server.gathered_embeddings()


def make_router(world, model_kind, backend, **kwargs):
    model = build_model(model_kind, in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    kwargs.setdefault("num_shards", 2)
    return ExecRouter(model, world.dtdg[0], backend=backend,
                      fraud_head=fraud, max_batch_size=8, **kwargs)


@pytest.mark.parametrize("model_kind", MODELS)
def test_multiprocess_matches_simulated_bit_for_bit(world, model_kind):
    """All three engine families, full 20-timestep stream, divergence
    exactly zero — scores and final embeddings."""
    sim = make_router(world, model_kind, "simulated")
    s_sim, e_sim = replay(sim, world)
    sim.close()
    mp = make_router(world, model_kind, "multiprocess")
    s_mp, e_mp = replay(mp, world)
    mp.close()
    assert float(np.abs(s_sim - s_mp).max()) == 0.0
    assert float(np.abs(e_sim - e_mp).max()) == 0.0


@pytest.mark.parametrize("num_shards", [1, 4])
def test_shard_count_does_not_change_numerics(world, num_shards):
    """The 2-shard mp tier, a 1-shard mp tier, and a 4-shard mp tier
    all serve identical embeddings (partitioning is routing, not
    approximation)."""
    ref = make_router(world, "cdgcn", "simulated", num_shards=2)
    _, e_ref = replay(ref, world, stop=6)
    ref.close()
    mp = make_router(world, "cdgcn", "multiprocess",
                     num_shards=num_shards)
    _, e_mp = replay(mp, world, stop=6)
    mp.close()
    assert float(np.abs(e_ref - e_mp).max()) == 0.0


def test_exec_tier_matches_sharded_server(world):
    """The exec tier reproduces the existing ShardedServer tier exactly
    on the same stream — the RPC boundary adds no numerics."""
    model = build_model("cdgcn", in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    server = ShardedServer(model, world.dtdg[0], num_shards=2,
                           fraud_head=fraud, max_batch_size=8)
    s_ref, e_ref = replay(server, world, stop=8)
    mp = make_router(world, "cdgcn", "multiprocess")
    s_mp, e_mp = replay(mp, world, stop=8)
    mp.close()
    assert float(np.abs(s_ref - s_mp).max()) == 0.0
    assert float(np.abs(e_ref - e_mp).max()) == 0.0


def test_rpc_traffic_stays_delta_sized(world):
    """The pipe never carries the resident graph: request bytes over a
    full replay stay far below shipping the topology every commit."""
    mp = make_router(world, "cdgcn", "multiprocess")
    replay(mp, world, stop=8)
    sent = sum(t.stats.bytes_sent for t in mp.transports)
    shm = mp.backend.shm_bytes_mapped
    commits = mp.counters.commits
    mp.close()
    assert commits > 0
    assert sent < shm * commits
