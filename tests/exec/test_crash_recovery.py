"""Crash recovery: dead workers revive bit-exact from capture + WAL.

Two recovery scopes are under test:

* **worker revival** (:meth:`ExecRouter._revive`) — one worker dies
  mid-stream (``debug_exit`` = ``os._exit`` in the real backend, no
  shutdown handshake); the router respawns it from the latest engine
  capture and replays the WAL tail through it.  The tier's subsequent
  outputs must equal an uninterrupted run's exactly.
* **tier recovery** (:meth:`ExecRouter.recover`) — the crash-mid-commit
  case: events are WAL-appended but the router dies before processing
  or acking them.  A recovered tier replays the tail and must match an
  uninterrupted tier bit for bit.
"""

import os

import numpy as np
import pytest

from repro.errors import ExecError, WorkerDeadError
from repro.exec import ExecRouter
from repro.models import build_model
from repro.nn.linear import Linear
from repro.serve import events_between
from repro.store import GraphStore

BACKENDS = ["simulated", "multiprocess"]


def make_router(world, backend, store_path=None):
    model = build_model("cdgcn", in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    router = ExecRouter(model, world.dtdg[0], backend=backend,
                        num_shards=2, fraud_head=fraud, max_batch_size=4)
    if store_path is not None:
        router.attach_store(GraphStore.create(
            store_path, num_vertices=world.dtdg[0].num_vertices))
    return router


def stream(world, t):
    return events_between(world.dtdg[t - 1], world.dtdg[t])


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_revives_bit_exact_mid_stream(world, backend, tmp_path):
    """Kill one worker between event batches; the next fan-out revives
    it and the tier's embeddings match an uninterrupted run exactly."""

    def run(path, crash):
        router = make_router(world, backend, store_path=path)
        events = stream(world, 1)
        half = len(events) // 2
        router.ingest_events(events[:half])
        if crash:
            router.transports[1].debug_exit()
            assert not router.transports[1].alive
        router.ingest_events(events[half:])
        q = router.submit_link(0, 119)
        router.drain()
        emb = router.gathered_embeddings()
        restarts = router.counters.worker_restarts
        router.close()
        return q.result, emb, restarts

    s0, e0, r0 = run(tmp_path / "clean", crash=False)
    s1, e1, r1 = run(tmp_path / "crash", crash=True)
    assert (r0, r1) == (0, 1)
    assert s0 == s1
    assert float(np.abs(e0 - e1).max()) == 0.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_after_wal_append_recovers_bit_exact(world, backend,
                                                   tmp_path):
    """Crash-mid-commit: the WAL holds an appended-but-unacked batch
    when the tier dies.  ``recover()`` must replay it and land on the
    exact state an uninterrupted tier reaches."""
    path = str(tmp_path / "store")
    router = make_router(world, backend, store_path=path)
    router.ingest_events(stream(world, 1))
    router.advance_time(world.dtdg[1])
    events = stream(world, 2)
    half = len(events) // 2
    router.ingest_events(events[:half])
    # the crash: batch reaches the WAL, no worker ever processes it
    router.store.append_events(events[half:])
    router.close()

    model = build_model("cdgcn", in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    recovered = ExecRouter.recover(GraphStore.open(path), model=model,
                                   backend=backend, fraud_head=fraud,
                                   max_batch_size=4)
    e_rec = recovered.gathered_embeddings()
    q = recovered.submit_link(0, 119)
    recovered.drain()
    recovered.close()

    reference = make_router(world, backend,
                            store_path=str(tmp_path / "ref"))
    reference.ingest_events(stream(world, 1))
    reference.advance_time(world.dtdg[1])
    reference.ingest_events(events[:half])
    reference.ingest_events(events[half:])
    e_ref = reference.gathered_embeddings()
    q_ref = reference.submit_link(0, 119)
    reference.drain()
    reference.close()

    assert float(np.abs(e_rec - e_ref).max()) == 0.0
    assert q.result == q_ref.result


def test_revival_survives_queries_in_flight(world, tmp_path):
    """A worker that dies between a flush's refresh and score RPCs is
    revived and the batch retried — queries still resolve, and they
    resolve to the uninterrupted run's exact scores."""
    router = make_router(world, "multiprocess",
                         store_path=str(tmp_path / "s"))
    router.ingest_events(stream(world, 1))
    router.transports[0].debug_exit()
    q = router.submit_link(0, 119)
    router.drain()                     # flush hits the dead worker
    assert q.done and q.result is not None
    assert router.counters.worker_restarts == 1
    router.close()

    clean = make_router(world, "multiprocess",
                        store_path=str(tmp_path / "ref"))
    clean.ingest_events(stream(world, 1))
    q_ref = clean.submit_link(0, 119)
    clean.drain()
    clean.close()
    assert q.result == q_ref.result


def test_revival_requires_a_store(world):
    router = make_router(world, "simulated")
    router.transports[1].debug_exit()
    with pytest.raises(WorkerDeadError):
        router.ingest_events(stream(world, 1))
    router.close()


def test_boundary_crossing_tail_demands_tier_recovery(world, tmp_path):
    """Worker revival replays event batches only; if the WAL tail since
    the last capture crosses a timestep boundary, the router refuses
    and directs to recover() (state_interval > 1 creates such tails)."""
    router = make_router(world, "simulated",
                         store_path=str(tmp_path / "s"))
    # captures only every 3 boundaries: the tail now spans a boundary
    router._store_state_interval = 3
    router.ingest_events(stream(world, 1))
    router.advance_time(world.dtdg[1])
    router.transports[0].debug_exit()
    with pytest.raises(ExecError):
        router.ingest_events(stream(world, 2))
    router.close()
