"""Router behavior: admission control, coalescing, liveness, metrics."""

import numpy as np
import pytest

from repro.errors import ConfigError, WorkerTimeoutError
from repro.exec import ExecRouter, MultiprocessBackend
from repro.models import build_model
from repro.nn.linear import Linear
from repro.obs import Telemetry


def make_router(world, **kwargs):
    model = build_model("cdgcn", in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    kwargs.setdefault("backend", "simulated")
    kwargs.setdefault("num_shards", 2)
    return ExecRouter(model, world.dtdg[0], fraud_head=fraud, **kwargs)


class TestAdmissionControl:
    def test_sheds_above_the_inflight_bound(self, world):
        router = make_router(world, max_batch_size=64,
                             flush_latency_ms=1e6, max_inflight=8)
        queries = [router.submit_link(i, (i + 1) % 120)
                   for i in range(12)]
        shed = [q for q in queries if q.shed]
        assert len(shed) == 4
        # a shed query resolves immediately, with no result to wait on
        assert all(q.done and q.result is None for q in shed)
        assert router.counters.queries_shed == 4
        assert router.counters.queries_submitted == 12
        router.drain()
        # only admitted queries were answered
        assert router.counters.queries_completed == 8
        assert all(q.result is not None
                   for q in queries if not q.shed)
        router.close()

    def test_backpressure_is_edge_triggered(self, world):
        router = make_router(world, max_batch_size=64,
                             flush_latency_ms=1e6, max_inflight=10,
                             backpressure_ratio=0.5)
        assert not router.under_backpressure
        for i in range(4):
            router.submit_fraud(i)
        assert not router.under_backpressure
        router.submit_fraud(4)          # crosses 0.5 * 10
        assert router.under_backpressure
        assert router.counters.backpressure_events == 1
        router.submit_fraud(5)          # still above: no second edge
        assert router.counters.backpressure_events == 1
        router.drain()
        assert not router.under_backpressure
        router.close()

    def test_no_bound_means_no_shedding(self, world):
        router = make_router(world, max_batch_size=4)
        queries = [router.submit_fraud(i) for i in range(20)]
        assert router.counters.queries_shed == 0
        router.drain()
        assert all(q.done and not q.shed for q in queries)
        router.close()

    def test_rejects_bad_configs(self, world):
        with pytest.raises(ConfigError):
            make_router(world, max_inflight=0)
        with pytest.raises(ConfigError):
            make_router(world, backpressure_ratio=0.0)
        with pytest.raises(ConfigError):
            make_router(world, backend="carrier-pigeon")
        with pytest.raises(ConfigError):
            make_router(world, num_shards=None)


class TestCoalescing:
    def test_one_score_rpc_per_touched_shard(self, world):
        router = make_router(world, max_batch_size=64)
        # all on shard 0 (vertices 0..59 with 2 uniform shards)
        for i in range(8):
            router.submit_fraud(i)
        router.flush()
        assert router.counters.score_rpcs == 1
        assert router.counters.batches_flushed == 1
        # now a mixed batch touches both shards: exactly 2 score RPCs
        router.submit_fraud(0)
        router.submit_fraud(119)
        router.flush()
        assert router.counters.score_rpcs == 3
        router.close()

    def test_cross_shard_link_gathers_remote_row(self, world):
        router = make_router(world, max_batch_size=4)
        q = router.submit_link(0, 119)   # endpoints on different shards
        router.drain()
        assert q.done
        assert router.counters.remote_row_fetches >= 1
        assert router.counters.remote_row_bytes > 0
        router.close()


class TestLiveness:
    def test_heartbeat_flags_dead_workers(self, world):
        router = make_router(world)
        assert router.heartbeat() == []
        router.transports[1].debug_exit()
        assert router.heartbeat() == [1]
        assert router.counters.heartbeat_failures == 1
        assert router.counters.heartbeats == 2
        router.close()

    def test_call_timeout_kills_and_raises(self, world):
        backend = MultiprocessBackend(call_timeout_s=0.5)
        router = make_router(world, backend=backend)
        with pytest.raises(WorkerTimeoutError):
            router.transports[0].call("debug_sleep", 30.0)
        assert not router.transports[0].alive
        router.close()

    def test_ping_roundtrip_on_real_worker(self, world):
        router = make_router(world, backend="multiprocess")
        assert router.heartbeat() == []
        router.close()
        # after close every transport reports dead
        assert all(not t.alive for t in router.transports)


class TestObservability:
    def test_exec_metrics_exported(self, world):
        router = make_router(world, max_inflight=16, max_batch_size=4)
        router.submit_link(0, 119)
        router.submit_fraud(5)
        router.drain()
        router._collect_metrics()
        reg = router.telemetry.registry
        assert reg.value("serve_queries_completed_total") == 2
        assert reg.value("exec_shard_count") == 2
        assert reg.value("exec_inflight_limit") == 16
        assert reg.value("exec_rpc_roundtrips_total", shard="0") > 0
        assert reg.value("comm_bytes_total", label="query_rows") > 0
        router.close()

    def test_exec_spans_traced(self, world):
        router = make_router(world, telemetry=Telemetry(tracing=True))
        router.submit_fraud(3)
        router.drain()
        stages = router.telemetry.stage_seconds()
        assert "exec.dispatch" in stages
        assert "exec.coalesce" in stages
        assert "exec.rpc" in stages
        router.close()

    def test_shm_metrics_on_real_backend(self, world):
        router = make_router(world, backend="multiprocess")
        q = router.submit_link(0, 119)
        router.drain()
        assert q.done
        router._collect_metrics()
        reg = router.telemetry.registry
        assert reg.value("exec_shm_bytes_mapped") > 0
        assert reg.value("exec_shm_rows_read_total", shard="1") > 0
        router.close()

    def test_stats_surface(self, world):
        router = make_router(world, backend="multiprocess")
        router.submit_fraud(3)
        router.drain()
        stats = router.stats()
        assert stats.backend == "multiprocess"
        assert stats.num_shards == 2
        assert stats.counters.queries_completed == 1
        assert len(stats.per_shard_busy_s) == 2
        assert stats.critical_path_s > 0
        assert stats.shm_bytes_mapped > 0
        router.close()
