"""Shared fixtures for the execution-tier tests.

Every test in this directory runs under a hard wall-clock alarm: the
multiprocessing backend's failure modes (hung worker, dropped pipe,
orphaned segment) can otherwise wedge a test run forever, and CI runs
this directory with real worker processes.
"""

import signal

import pytest

from repro.graph import AMLSimConfig, generate_amlsim

TEST_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def per_test_alarm():
    """SIGALRM-based per-test timeout (pytest-timeout without the
    plugin; main-thread only, which is how this suite runs)."""

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"exec test exceeded {TEST_TIMEOUT_S}s wall clock")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def world():
    """A 20-timestep AML-Sim world, small enough that a full-stream
    replay with real worker processes stays in seconds."""
    config = AMLSimConfig(num_accounts=120, num_timesteps=20,
                          background_per_step=200,
                          partner_persistence=0.8, num_fan_out=2,
                          num_fan_in=2, num_cycles=1,
                          num_scatter_gather=1, pattern_size=4,
                          num_branches=4, branch_locality=0.7, seed=5)
    return generate_amlsim(config)
