"""Chaos suite: the resilience layer under deterministic fault storms.

The contract under test is *bit-exactness under chaos*: a seeded storm
of drops, delays, duplicates, corrupted payloads and scheduled crashes
must leave the served scores and final embeddings identical — divergence
exactly 0.0 — to a fault-free oracle, because every fault class maps to
a recovery mechanism that preserves the committed history:

* drops / delays  → deadline-bounded retry of idempotent reads
* duplicates      → per-shard sequence ids + worker-side dedup
* corruption      → checksum rejection before state mutation, then a
  pristine redelivery under the same sequence id
* crashes         → replica failover (reads promote, writes already
  fanned to every live replica)

When *every* replica of a shard is gone, the router degrades instead of
dying: bounded-staleness answers from the last boundary's cached rows,
stamped with their staleness, shedding anything beyond the bound.
"""

import numpy as np
import pytest

from repro.errors import WorkerDeadError, WorkerTimeoutError
from repro.exec import ExecRouter, FaultPlan, FaultSpec, RetryPolicy, \
    ShardChannel, TransportStats
from repro.models import build_model
from repro.nn.linear import Linear
from repro.serve import events_between
from repro.serve.server import score_fraud, score_links


def make_router(world, **kwargs):
    model = build_model("cdgcn", in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    kwargs.setdefault("backend", "simulated")
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("max_batch_size", 8)
    return ExecRouter(model, world.dtdg[0], fraud_head=fraud, **kwargs)


def replay(router, world, *, start=1, stop=None, crash_at=None):
    """Drive the stream like the parity suite; optionally hard-kill
    shard 0's primary right before timestep ``crash_at``'s queries."""
    dtdg = world.dtdg
    stop = dtdg.num_timesteps if stop is None else stop
    scores = []
    for t in range(start, stop):
        events = events_between(dtdg[t - 1], dtdg[t])
        half = len(events) // 2
        if half:
            router.ingest_events(events[:half])
        if t == crash_at:
            router.channels[0].replicas[0].debug_exit()
        q1 = router.submit_link(0, 119)
        q2 = router.submit_fraud(3 * t % 120)
        router.drain()
        scores += [q1.result, q2.result]
        if events[half:]:
            router.ingest_events(events[half:])
        router.advance_time(dtdg[t])
    return np.array(scores), router.gathered_embeddings()


@pytest.fixture(scope="module")
def oracle(world):
    """Fault-free simulated replay: the ground truth every chaotic run
    must match bit for bit."""
    router = make_router(world)
    scores, emb = replay(router, world)
    router.close()
    return scores, emb


# -- the acceptance storm ---------------------------------------------------------------

def storm_plan(seed):
    return FaultPlan(
        seed=seed,
        drop_rate=0.03, delay_rate=0.03, delay_s=2e-4,
        duplicate_rate=0.05, corrupt_rate=0.05,
        schedule=(
            # one primary crash per shard, mid-stream
            FaultSpec("crash", verb="apply_delta", shard=0, replica=0,
                      call_index=4),
            FaultSpec("crash", verb="refresh", shard=1, replica=0,
                      call_index=7),
        ))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fault_storm_replay_is_bit_exact(world, oracle, seed):
    """Drops + delays + duplicates + corruption + one primary crash per
    shard: with retries and 2-way replicas the full 20-timestep replay
    matches the fault-free oracle exactly."""
    plan = storm_plan(seed)
    router = make_router(world, replicas=2, fault_plan=plan,
                         retry=RetryPolicy(max_attempts=6,
                                           deadline_s=10.0))
    scores, emb = replay(router, world)
    counters = router.counters
    router.close()

    # the storm actually stormed, and recovery machinery engaged
    assert plan.injected["crash"] == 2
    assert plan.total_injected > 10
    assert counters.replica_deaths >= 2
    assert counters.failovers >= 1
    assert counters.rpc_retries >= 1

    s_ref, e_ref = oracle
    assert float(np.abs(scores - s_ref).max()) == 0.0
    assert float(np.abs(emb - e_ref).max()) == 0.0


def test_mp_replica_failover_mid_stream(world):
    """Real OS processes: killing shard 0's primary mid-stream promotes
    its replica with no lost commits — scores and embeddings stay
    bit-identical to the fault-free simulated oracle."""
    ref = make_router(world)
    s_ref, e_ref = replay(ref, world, stop=8)
    ref.close()

    router = make_router(world, backend="multiprocess", replicas=2)
    scores, emb = replay(router, world, stop=8, crash_at=4)
    counters = router.counters
    router.prometheus()
    live = router.telemetry.registry.value("exec_replicas_live",
                                           shard="0")
    router.close()

    assert counters.failovers >= 1
    assert counters.replica_deaths == 1
    assert live == 1.0
    assert float(np.abs(scores - s_ref).max()) == 0.0
    assert float(np.abs(emb - e_ref).max()) == 0.0


@pytest.mark.parametrize("backend", ["simulated", "multiprocess"])
def test_duplicated_apply_delta_is_noop(world, oracle, backend):
    """At-least-once wire, exactly-once application: every apply_delta
    delivered twice under the same sequence id must be absorbed by the
    worker dedup cache, leaving state bit-identical."""
    plan = FaultPlan(duplicate_rate=1.0, verbs={"apply_delta"})
    router = make_router(world, backend=backend, fault_plan=plan)
    scores, emb = replay(router, world)
    assert plan.injected["duplicate"] > 10

    router.harvest_telemetry()
    reg = router.telemetry.registry
    deduped = sum(reg.value("worker_rpc_deduped_total", worker=str(s))
                  for s in range(router.num_shards))
    router.close()

    # every duplicated delivery was answered from the reply cache, not
    # re-applied
    assert deduped == plan.injected["duplicate"]
    s_ref, e_ref = oracle
    assert float(np.abs(scores - s_ref).max()) == 0.0
    assert float(np.abs(emb - e_ref).max()) == 0.0


def test_corrupted_delta_rejected_then_redelivered(world, oracle):
    """A corrupted delta payload fails the base-checksum gate *before*
    worker state mutates; the retry redelivers pristine bytes under the
    same sequence id and the stream stays bit-exact."""
    plan = FaultPlan(schedule=(
        FaultSpec("corrupt", verb="apply_delta", shard=0, call_index=1),))
    router = make_router(world, backend="multiprocess", fault_plan=plan)
    scores, emb = replay(router, world)
    counters = router.counters
    router.close()

    assert plan.injected["corrupt"] == 1
    assert counters.rpc_retries >= 1
    s_ref, e_ref = oracle
    assert float(np.abs(scores - s_ref).max()) == 0.0
    assert float(np.abs(emb - e_ref).max()) == 0.0


# -- degraded serving -------------------------------------------------------------------

def test_degraded_mode_serves_stale_then_sheds(world):
    """With every replica of shard 0 down, queries touching it are
    answered from the last committed boundary's cached rows, stamped
    with their staleness — until the bound is exceeded, then shed."""
    router = make_router(world, max_staleness=3)
    dtdg = world.dtdg
    for t in range(1, 6):
        router.ingest_events(events_between(dtdg[t - 1], dtdg[t]))
        router.advance_time(dtdg[t])
    boundary = router.gathered_embeddings()

    for transport in router.channels[0].replicas:
        transport.debug_exit()
    assert not router.channels[0].alive
    # dead but freshly cached: zero boundaries behind, still servable
    assert router.shard_staleness(0) == 0
    # two boundaries pass without shard 0
    router.advance_time(dtdg[6])
    router.advance_time(dtdg[7])
    assert router.shard_staleness(0) == 2
    assert router.shard_staleness(1) == 0

    q_dead = router.submit_fraud(0)        # vertex 0 lives on shard 0
    q_live = router.submit_fraud(119)      # shard 1: normal path
    q_link = router.submit_link(0, 119)    # spans dead + live
    router.drain()

    assert q_dead.staleness == 2
    assert q_link.staleness == 2
    assert q_live.staleness is None
    assert router.counters.degraded_queries == 2

    # degraded answers come from the boundary-cached rows, exactly
    fraud = router.fraud_head
    exp_fraud = score_fraud(boundary, np.array([0]), fraud)[0]
    assert q_dead.result == exp_fraud
    live_row = router.channels[1].embedding_rows(
        np.array([119], dtype=np.int64))[0]
    exp_link = score_links(np.stack([boundary[0], live_row]),
                           np.array([[0, 1]]), router.link_head)[0]
    assert q_link.result == exp_link

    # past the staleness bound the shard sheds rather than lying
    router.advance_time(dtdg[8])
    router.advance_time(dtdg[9])
    assert router.shard_staleness(0) == 4
    q_stale = router.submit_fraud(0)
    q_fresh = router.submit_fraud(119)
    router.drain()
    assert q_stale.shed and q_stale.done and q_stale.result is None
    assert router.counters.queries_shed_stale == 1
    assert q_fresh.result is not None      # the live shard still serves

    router.prometheus()
    reg = router.telemetry.registry
    assert reg.value("exec_shard_down", shard="0") == 1.0
    assert reg.value("exec_shard_down", shard="1") == 0.0
    assert reg.value("exec_shard_staleness_steps", shard="0") == 4.0
    router.close()


def test_read_failover_promotes_replica(world):
    """A dead primary with a live replica is invisible to clients:
    reads promote, results keep flowing, and the gauges record it."""
    router = make_router(world, replicas=2)
    router.channels[0].replicas[0].debug_exit()
    q = router.submit_fraud(0)
    router.drain()
    assert q.result is not None and not q.shed
    assert router.counters.failovers == 1
    assert router.channels[0].alive
    router.prometheus()
    assert router.telemetry.registry.value(
        "exec_replicas_live", shard="0") == 1.0
    router.close()


# -- admission-slot hygiene under timeouts ----------------------------------------------

def test_timed_out_flush_releases_admission_slots(world):
    """A flush that dies on RPC timeouts must resolve its queries as
    shed — releasing their admission slots — and count the timeouts;
    previously the slots leaked and the router wedged shut."""
    plan = FaultPlan(drop_rate=1.0, verbs={"refresh"})
    router = make_router(world, fault_plan=plan, max_inflight=4,
                         max_batch_size=4, flush_latency_ms=1e6,
                         retry=RetryPolicy(max_attempts=2,
                                           base_backoff_s=1e-4,
                                           deadline_s=0.5))
    qs = [router.submit_fraud(i) for i in range(3)]
    with pytest.raises((WorkerDeadError, WorkerTimeoutError)):
        router.submit_fraud(3)     # fills the batch -> flush -> storm
    assert all(q.done and q.shed and q.result is None for q in qs)
    assert router.counters.queries_shed >= 4
    assert router.counters.rpc_timeouts >= 1

    # the slots are free again: a fresh batch is admitted in full
    qs2 = [router.submit_fraud(i) for i in range(3)]
    assert not any(q.shed for q in qs2)

    router.prometheus()
    reg = router.telemetry.registry
    timeouts = sum(reg.value("exec_rpc_timeouts_total", shard=str(s))
                   for s in range(router.num_shards))
    assert timeouts >= 1
    router.close()


# -- circuit breaker --------------------------------------------------------------------

class _ScriptedTransport:
    """Transport stub whose results follow a script: a value to return
    or an exception instance to raise."""

    def __init__(self, shard_id=0, script=()):
        self.shard_id = shard_id
        self.script = list(script)
        self.stats = TransportStats()
        self.tracer = None
        self.calls = 0

    @property
    def alive(self):
        return True

    def submit(self, method, *args, seq=None):
        pass

    def result(self):
        self.calls += 1
        out = self.script.pop(0) if self.script else "ok"
        if isinstance(out, Exception):
            raise out
        return out

    def call(self, method, *args, seq=None):
        self.submit(method, *args, seq=seq)
        return self.result()

    def ping(self, timeout=None):
        return True

    def close(self):
        pass


def test_breaker_trips_fails_fast_and_half_opens():
    clock = [0.0]
    transport = _ScriptedTransport(
        script=[WorkerTimeoutError("t"), WorkerTimeoutError("t")])
    events = []
    channel = ShardChannel(
        0, [transport],
        policy=RetryPolicy(max_attempts=1, deadline_s=1e6),
        breaker_threshold=2, breaker_cooldown_s=5.0,
        clock=lambda: clock[0],
        on_event=lambda event, **kw: events.append(event))

    with pytest.raises(WorkerDeadError):
        channel.call("refresh")
    with pytest.raises(WorkerDeadError):
        channel.call("refresh")
    assert "breaker_trip" in events
    assert transport.calls == 2

    # tripped: the next call fails fast without touching the wire
    with pytest.raises(WorkerDeadError):
        channel.call("refresh")
    assert transport.calls == 2

    # after the cooldown a half-open probe goes through and closes it
    clock[0] = 10.0
    assert channel.call("refresh") == "ok"
    assert channel.call("refresh") == "ok"
    assert transport.calls == 4
