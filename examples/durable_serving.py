"""Durable serving: WAL-backed ingestion, time travel, crash recovery.

The storage tier closes the gap between "fast in memory" and "survives
a crash":

1. simulate a bank's transaction history (AML-Sim) and persist it as a
   :class:`repro.store.GraphStore` — a delta-log WAL plus compacted CSR
   bases (the §3.2 graph-difference idea applied to durability),
2. time-travel: materialize historical timesteps from the nearest base
   and compare the footprint against naive per-snapshot storage,
3. boot a :class:`repro.serve.ModelServer`, attach the store so every
   ingested event batch is WAL-logged before acknowledgment, and
   stream live transactions through it,
4. kill the server mid-stream and ``recover()`` a new one from
   (model checkpoint, newest engine capture, WAL tail replay) —
   then verify the recovered embeddings match the "crashed" process
   exactly.

Run:  python examples/durable_serving.py
"""

import os
import shutil
import tempfile

import numpy as np

from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.serve import ModelServer, events_between
from repro.store import GraphStore
from repro.store.codec import snapshot_record_nbytes
from repro.train import save_model_checkpoint

SERVE_FROM_T = 6


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-durable-")
    sim = generate_amlsim(AMLSimConfig(
        num_accounts=800, num_timesteps=14, background_per_step=1200,
        partner_persistence=0.92, activity_skew=0.4, seed=0))
    dtdg = sim.dtdg

    # -- 1. persist the history as a delta log -------------------------------
    history_path = os.path.join(workdir, "history")
    history = GraphStore.from_dtdg(history_path, dtdg, base_interval=4)
    naive = sum(snapshot_record_nbytes(s) for s in dtdg.snapshots)
    print(f"history: {dtdg.num_timesteps} timesteps, "
          f"{dtdg.total_nnz} total edges")
    print(f"  delta log  : {history.wal_nbytes:>9,} bytes "
          f"(+ {history.base_nbytes:,} in compacted bases)")
    print(f"  naive      : {naive:>9,} bytes "
          f"({naive / history.wal_nbytes:.1f}x larger)")

    # -- 2. time travel ------------------------------------------------------
    t = dtdg.num_timesteps - 4
    replayed_before = history.records_replayed
    snap = history.replay_to(t)
    print(f"time travel to t={t}: {snap.num_edges} edges, "
          f"{history.records_replayed - replayed_before} log records "
          f"replayed (nearest base + tail)")
    assert snap == dtdg[t]

    # -- 3. serve with an attached store -------------------------------------
    model = build_model("cdgcn", in_features=2, hidden=12, embed_dim=12,
                        seed=0)
    ckpt = save_model_checkpoint(os.path.join(workdir, "model.npz"),
                                 model, "cdgcn")
    server = ModelServer(model, dtdg[SERVE_FROM_T])
    live_path = os.path.join(workdir, "live")
    server.attach_store(GraphStore.create(live_path,
                                          dtdg.num_vertices,
                                          base_interval=4),
                        state_interval=2)
    for t in range(SERVE_FROM_T + 1, dtdg.num_timesteps):
        server.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        for i in range(0, len(events), 200):
            server.ingest_events(events[i:i + 200])
    print(f"served {server.counters.events_ingested} events across "
          f"{server.counters.advances} timestep boundaries "
          f"(all WAL-logged before acknowledgment)")

    # -- 4. crash + recover --------------------------------------------------
    server.cache.invalidate_all()
    server.engine.refresh()   # settle pending rows for the comparison
    pre_crash = server.engine.embeddings.copy()
    del server  # the process is gone; only the store survives

    recovered = ModelServer.recover(GraphStore.open(live_path),
                                    checkpoint=ckpt)
    recovered.cache.invalidate_all()
    recovered.engine.refresh()
    divergence = float(np.abs(recovered.engine.embeddings
                              - pre_crash).max())
    print(f"recovered server: steps={recovered.engine.steps}, "
          f"resident nnz={recovered.ingestor.resident.num_edges}, "
          f"embedding divergence vs pre-crash = {divergence:.2e}")
    assert divergence < 1e-6

    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
