"""Live telemetry: one bundle, every tier, three export formats.

Drives a 20-timestep AML-Sim transaction stream through a 3-shard
:class:`repro.serve.ShardedServer` with an attached
:class:`repro.store.GraphStore` — the store's WAL spans nest under the
router's ingest spans because ``attach_store`` rebinds the store onto
the server's :class:`repro.obs.Telemetry` — and then dumps what the
instrumentation saw, with no bench code involved:

1. the per-stage span breakdown of the delta hot path
   (``serve.ingest → serve.commit/fanout/halo_sync``,
   ``store.append``, ``serve.query``),
2. the Prometheus text exposition: serve counters, per-shard
   halo-byte series, store WAL and compaction counters, the
   latency-reservoir summary,
3. the same registry + span trees as JSONL events.

Run:  python examples/live_metrics.py
"""

import io
import os
import shutil
import tempfile

from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.obs import Telemetry
from repro.serve import ShardedServer, events_between
from repro.store import GraphStore

NUM_TIMESTEPS = 20
NUM_SHARDS = 3


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-obs-")
    dtdg = generate_amlsim(AMLSimConfig(
        num_accounts=400, num_timesteps=NUM_TIMESTEPS,
        background_per_step=600, partner_persistence=0.9,
        seed=0)).dtdg

    model = build_model("cdgcn", in_features=2, hidden=12, embed_dim=12,
                        seed=0)
    telemetry = Telemetry(tracing=True)
    server = ShardedServer(model, dtdg[0], num_shards=NUM_SHARDS,
                           telemetry=telemetry)
    server.attach_store(GraphStore.create(os.path.join(workdir, "s"),
                                          dtdg.num_vertices,
                                          base_interval=5))

    for t in range(1, NUM_TIMESTEPS):
        server.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        for i in range(0, len(events), 300):
            server.ingest_events(events[i:i + 300])
        for u in range(t, t + 5):
            server.submit_link(u, (u + 1) % dtdg.num_vertices)
        server.drain()

    # -- 1. span breakdown ---------------------------------------------------
    print("== stage totals (folded from spans) ==")
    for name, seconds in sorted(telemetry.stage_seconds().items(),
                                key=lambda kv: -kv[1]):
        calls = telemetry.registry.value("span_calls_total", span=name)
        print(f"  {name:<20} {seconds * 1e3:9.2f} ms  "
              f"across {int(calls)} calls")
    print()
    print("== last ingest, span tree ==")
    ingests = [r for r in telemetry.tracer.roots
               if r.name == "serve.ingest"]
    print("\n".join(f"{'  ' * d}{s.name} {s.duration_ms:.2f}ms {s.attrs}"
                    for d, s in ingests[-1].walk()))
    print()

    # -- 2. Prometheus exposition --------------------------------------------
    print("== prometheus text (excerpt) ==")
    wanted = ("serve_events_ingested_total", "serve_queries_completed",
              "shard_halo_bytes_total", "shard_halo_rows_total",
              "shard_load_skew", "store_wal", "store_compaction",
              "serve_latency_ms")
    for line in server.prometheus().splitlines():
        if not line.startswith("#") and line.startswith(wanted):
            print(f"  {line}")
    print()

    # -- 3. JSONL ------------------------------------------------------------
    buf = io.StringIO()
    events_written = server.export_jsonl(buf)
    first = buf.getvalue().splitlines()[0]
    print(f"== jsonl: {events_written} events, first line ==")
    print(f"  {first[:76]}...")

    shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
