"""Chaos serving: a seeded fault storm against a replicated exec tier.

Everything the resilience layer does, live:

1. boot two :class:`repro.exec.ExecRouter` tiers over the same AML-Sim
   stream — a fault-free oracle, and a 2-way-replicated tier whose
   transports are wrapped in a seeded :class:`repro.exec.FaultPlan`
   (drops, delays, duplicated deliveries, corrupted payloads, and one
   scheduled primary crash per shard),
2. replay the identical event + query stream through both while the
   storm rages: idempotent reads retry with backoff, sequenced writes
   dedup, the crashed primaries fail over to their replicas,
3. verify the chaotic tier's scores and final embeddings match the
   oracle **bit for bit** (divergence 0.0),
4. then kill *every* replica of one shard and keep serving: queries
   touching it are answered from the last committed boundary's cached
   embeddings, stamped with their staleness, until the bound is
   exceeded and they shed.

Run:  python examples/chaos_serving.py
"""

import numpy as np

from repro.exec import ExecRouter, FaultPlan, FaultSpec, RetryPolicy
from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import Linear
from repro.serve import events_between


def boot(dtdg, **kwargs):
    model = build_model("cdgcn", in_features=2, seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
    return ExecRouter(model, dtdg[0], backend="simulated", num_shards=2,
                      fraud_head=fraud, max_batch_size=16, **kwargs)


def replay(router, dtdg):
    scores = []
    for t in range(1, dtdg.num_timesteps):
        events = events_between(dtdg[t - 1], dtdg[t])
        router.ingest_events(events)
        q1 = router.submit_link(0, dtdg.num_vertices - 1)
        q2 = router.submit_fraud(3 * t % dtdg.num_vertices)
        router.drain()
        scores += [q1.result, q2.result]
        router.advance_time(dtdg[t])
    return np.array(scores), router.gathered_embeddings()


def main() -> None:
    sim = generate_amlsim(AMLSimConfig(
        num_accounts=240, num_timesteps=12, background_per_step=400,
        partner_persistence=0.92, seed=3))
    dtdg = sim.dtdg

    # -- 1. the storm --------------------------------------------------------
    storm = FaultPlan(
        seed=7,
        drop_rate=0.05, delay_rate=0.05, delay_s=2e-4,
        duplicate_rate=0.08, corrupt_rate=0.08,
        schedule=(
            FaultSpec("crash", verb="apply_delta", shard=0, replica=0,
                      call_index=3),
            FaultSpec("crash", verb="refresh", shard=1, replica=0,
                      call_index=5),
        ))

    oracle = boot(dtdg)
    ref_scores, ref_emb = replay(oracle, dtdg)
    oracle.close()

    chaotic = boot(dtdg, replicas=2, fault_plan=storm,
                   retry=RetryPolicy(max_attempts=6, deadline_s=10.0))
    scores, emb = replay(chaotic, dtdg)
    c = chaotic.counters

    print("storm injected:", dict(storm.injected))
    print(f"recovery: retries={c.rpc_retries} timeouts={c.rpc_timeouts} "
          f"failovers={c.failovers} replica_deaths={c.replica_deaths} "
          f"deduped-duplicates absorbed silently")
    divergence = max(float(np.abs(scores - ref_scores).max()),
                     float(np.abs(emb - ref_emb).max()))
    print(f"divergence vs fault-free oracle: {divergence:.1e}")
    assert divergence == 0.0

    # -- 2. degrade: lose every replica of shard 0 ---------------------------
    chaotic.close()
    degraded = boot(dtdg, max_staleness=3)
    for t in range(1, 6):
        degraded.ingest_events(events_between(dtdg[t - 1], dtdg[t]))
        degraded.advance_time(dtdg[t])
    for transport in degraded.channels[0].replicas:
        transport.debug_exit()
    degraded.advance_time(dtdg[6])
    degraded.advance_time(dtdg[7])

    q = degraded.submit_fraud(0)          # vertex 0 lives on shard 0
    degraded.drain()
    print(f"shard 0 down: fraud(0) answered {q.result:.4f} at "
          f"staleness={q.staleness} boundaries "
          f"(bound {degraded.max_staleness})")

    degraded.advance_time(dtdg[8])
    degraded.advance_time(dtdg[9])        # lag 4 > bound 3: shed
    q = degraded.submit_fraud(0)
    degraded.drain()
    print(f"past the bound: shed={q.shed} "
          f"(lag {degraded.shard_staleness(0)} boundaries) — "
          f"bounded staleness is a contract, not a hope")
    assert q.shed
    degraded.close()


if __name__ == "__main__":
    main()
