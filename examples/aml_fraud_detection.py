"""Anti-money-laundering detection on a simulated transaction graph.

The paper's motivating AML-Sim workload end to end:

1. simulate a bank's transaction stream with planted laundering
   typologies (fan-in, fan-out, cycles, scatter-gather),
2. attach per-timestep in/out-degree features,
3. train CD-GCN — its per-vertex LSTM carries each account's degree
   bursts through time — to classify accounts as suspicious vs normal,
4. report detection quality against the simulator's ground truth.

Run:  python examples/aml_fraud_detection.py
"""

import numpy as np

from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.tensor import Adam, Tensor, no_grad
from repro.train import (NodeClassificationTask,
                         compute_laplacians, degree_features)


def main() -> None:
    # 1. simulate 10 weeks of transactions among 300 accounts
    config = AMLSimConfig(
        num_accounts=300, num_timesteps=10, background_per_step=500,
        partner_persistence=0.8, num_fan_out=5, num_fan_in=5,
        num_cycles=3, num_scatter_gather=3, pattern_size=12, seed=42)
    sim = generate_amlsim(config)
    labels = sim.account_labels()
    print(f"simulated {sim.dtdg.total_nnz} transactions, "
          f"{int(labels.sum())} of {len(labels)} accounts launder money")

    # 2. degree features on the raw transaction snapshots (CD-GCN
    #    trains on unsmoothed graphs, paper §5.1)
    dtdg = sim.dtdg
    dtdg.set_features(degree_features(dtdg))
    laplacians = compute_laplacians(dtdg)
    frames = [Tensor(f) for f in dtdg.features]

    # 3. CD-GCN + account classification at every timestep
    model = build_model("cdgcn", in_features=2, hidden=12, embed_dim=12,
                        seed=0)
    task = NodeClassificationTask(labels, dtdg.num_timesteps,
                                  embed_dim=12, num_classes=2, seed=0)
    optimizer = Adam(model.parameters() + task.head.parameters(), lr=0.03)

    for epoch in range(80):
        optimizer.zero_grad()
        embeddings = model(laplacians, frames)
        loss = task.loss_full(embeddings)
        loss.backward()
        optimizer.step()
        if epoch % 20 == 0 or epoch == 79:
            print(f"epoch {epoch:2d}  loss {loss.item():.4f}  "
                  f"accuracy {task.accuracy(embeddings):.1%}")

    # 4. detection quality on the final timestep's embedding
    with no_grad():
        embeddings = model(laplacians, frames)
        scores = task.head(embeddings[-1]).data
    predicted = scores.argmax(axis=1)
    tp = int(((predicted == 1) & (labels == 1)).sum())
    fp = int(((predicted == 1) & (labels == 0)).sum())
    fn = int(((predicted == 0) & (labels == 1)).sum())
    precision = tp / (tp + fp) if tp + fp else float("nan")
    recall = tp / (tp + fn) if tp + fn else float("nan")
    print(f"suspicious-account detection: precision {precision:.1%}, "
          f"recall {recall:.1%}")
    baseline = max(labels.mean(), 1 - labels.mean())
    final_acc = float((predicted == labels).mean())
    print(f"accuracy {final_acc:.1%} vs majority baseline {baseline:.1%}")


if __name__ == "__main__":
    main()
