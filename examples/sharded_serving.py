"""Scale the serving tier: shard a live transaction graph 4 ways.

Demonstrates the sharded serving subsystem end to end:

1. simulate a bank with 4 regional branches (AML-Sim with
   ``branch_locality``) and planted cross-region laundering patterns,
2. boot a :class:`repro.serve.ShardedServer` whose 4 shards align with
   the branches (2 replicas each),
3. stream held-out weeks of transactions through it while firing
   link/fraud queries — including queries that span shards,
4. verify the sharded embeddings equal a single-worker full recompute,
5. flood one region with queries until the load-skew rebalancer
   re-partitions the keyspace,
6. print the tier's throughput, latency, halo-traffic, and skew
   counters.

Run:  PYTHONPATH=src python examples/sharded_serving.py
"""

import numpy as np

from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import Linear
from repro.serve import ModelServer, ShardedServer, events_between

STREAM_FROM = 4          # weeks 0..3 are resident history
NUM_SHARDS = 4


def main() -> None:
    config = AMLSimConfig(
        num_accounts=2000, num_timesteps=12, background_per_step=2500,
        partner_persistence=0.9, activity_skew=0.3,
        num_branches=NUM_SHARDS, branch_locality=0.85,
        num_fan_out=4, num_fan_in=4, num_cycles=3, num_scatter_gather=2,
        pattern_size=8, seed=3)
    sim = generate_amlsim(config)
    dtdg = sim.dtdg
    print(f"simulated {dtdg.total_nnz} transactions across "
          f"{NUM_SHARDS} bank regions over {dtdg.num_timesteps} weeks")

    model = build_model("cdgcn", in_features=2, hidden=16, embed_dim=16,
                        seed=0)
    fraud_head = Linear(16, 2, np.random.default_rng(7))
    server = ShardedServer(model, dtdg[0], num_shards=NUM_SHARDS,
                           replicas=2, fraud_head=fraud_head,
                           max_batch_size=64, flush_latency_ms=10.0,
                           rebalance_skew=1.8, rebalance_min_queries=400)
    # single-worker reference for the exactness check
    ref_model = build_model("cdgcn", in_features=2, hidden=16,
                            embed_dim=16, seed=0)
    reference = ModelServer(ref_model, dtdg[0], fraud_head=fraud_head,
                            incremental=False)
    for t in range(1, STREAM_FROM):
        server.advance_time(dtdg[t])
        reference.advance_time(dtdg[t])

    print(f"\nstreaming weeks {STREAM_FROM}..{dtdg.num_timesteps - 1} "
          f"through {NUM_SHARDS} shards x 2 replicas ...")
    rng = np.random.default_rng(1)
    n = dtdg.num_vertices
    for t in range(STREAM_FROM, dtdg.num_timesteps):
        server.advance_time()
        reference.advance_time()
        events = events_between(dtdg[t - 1], dtdg[t])
        for i in range(0, len(events), 200):
            server.ingest_events(events[i:i + 200])
            reference.ingest_events(events[i:i + 200])
            for _ in range(16):
                u, v = int(rng.integers(n)), int(rng.integers(n))
                server.submit_link(u, v)        # often crosses shards
                server.submit_fraud(int(rng.integers(n)))
            server.flush()

    reference.cache.invalidate_all()
    reference.engine.refresh()
    divergence = float(np.abs(server.gathered_embeddings()
                              - reference.engine.embeddings).max())
    print(f"max |sharded - single-worker| divergence: {divergence:.2e}")

    print("\nflooding region 0 with fraud queries to trigger the "
          "rebalancer ...")
    hot = server.plan.block(0)[:20]
    for i in range(600):
        server.submit_fraud(int(hot[i % len(hot)]))
    server.drain()
    skew_before = server.observed_skew()
    server.advance_time()   # rebalancing runs at timestep boundaries
    stats = server.stats()
    print(f"observed skew {skew_before:.2f} -> rebalances: "
          f"{stats.counters.rebalances}, new block sizes "
          f"{server.plan.block_sizes().tolist()}")

    print("\n--- sharded tier counters ---")
    c, traffic = stats.counters, stats.traffic
    print(f"queries completed     {c.queries_completed}")
    print(f"latency p50/p95/p99   {stats.latency_p50_ms:.2f} / "
          f"{stats.latency_p95_ms:.2f} / {stats.latency_p99_ms:.2f} ms")
    print(f"aggregate throughput  {stats.aggregate_qps:,.0f} q/s "
          f"(simulated-parallel)")
    print(f"events ingested       {c.events_ingested} "
          f"({c.cross_shard_events} delta edges crossed shards)")
    print(f"ghost dirty rows      {c.halo_dirty_rows}")
    print(f"halo state shipped    {traffic.rows_shipped} rows / "
          f"{traffic.bytes_shipped / 1024:.1f} KiB")
    print(f"cross-shard fetches   {c.remote_row_fetches} embedding rows")
    print(f"per-shard queries     {list(stats.per_shard_queries)}")


if __name__ == "__main__":
    main()
