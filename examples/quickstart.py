"""Quickstart: train a dynamic GNN on a synthetic dynamic graph.

Covers the core workflow end to end on a laptop-size problem:

1. generate an evolving dynamic graph (DTDG),
2. attach the paper's in/out-degree features,
3. build TM-GCN and a link-prediction task,
4. train with timeline gradient checkpointing,
5. evaluate held-out link prediction.

Run:  python examples/quickstart.py
"""

from repro.graph import evolving_dtdg
from repro.models import build_model
from repro.tensor import Adam
from repro.train import (CheckpointRunner, LinkPredictionTask,
                         compute_laplacians, degree_features)
from repro.tensor import Tensor


def main() -> None:
    # 1. a dynamic graph: 200 vertices, 24 snapshots, 600 edges each,
    #    with 15% of edges changing between consecutive snapshots
    dtdg = evolving_dtdg(num_vertices=200, num_timesteps=24,
                         edges_per_snapshot=600, churn=0.15, seed=0)
    print(f"dynamic graph: {dtdg}")
    print(f"consecutive-snapshot overlap: "
          f"{dtdg.mean_topology_overlap():.2f}")

    # 2. the paper's input features: per-timestep in/out degrees
    dtdg.set_features(degree_features(dtdg))
    laplacians = compute_laplacians(dtdg)
    frames = [Tensor(f) for f in dtdg.features]

    # 3. model + task: TM-GCN with the paper's widths, link prediction
    #    on the held-out final snapshot (theta = fraction of edges used)
    model = build_model("tmgcn", in_features=2, hidden=6, embed_dim=6,
                        seed=0)
    task = LinkPredictionTask(dtdg, embed_dim=6, theta=0.3, seed=0)
    t_train = task.num_train_timesteps

    # 4. train with gradient checkpointing: only 1/4 of the timeline's
    #    activations are ever live (paper §3.1)
    optimizer = Adam(model.parameters() + task.head.parameters(), lr=0.02)
    runner = CheckpointRunner(model, num_blocks=4)
    for epoch in range(20):
        optimizer.zero_grad()
        result = runner.run_epoch(laplacians[:t_train], frames[:t_train],
                                  task.loss_block)
        optimizer.step()
        if epoch % 5 == 0 or epoch == 19:
            print(f"epoch {epoch:2d}  loss {result.loss:.4f}")

    # 5. evaluate: embeddings for the last training step predict the
    #    edges of the held-out snapshot (paper §6.4 protocol)
    embeddings = runner.forward_streaming(laplacians[:t_train],
                                          frames[:t_train])
    accuracy = task.test_accuracy(embeddings[-1])
    print(f"held-out link prediction accuracy: {accuracy:.1%}")


if __name__ == "__main__":
    main()
