"""Distributed training on the simulated multi-node multi-GPU cluster.

Demonstrates the paper's §4 machinery on one workload:

1. build a calibrated stand-in of the paper's youtube dataset and
   smooth it for TM-GCN,
2. train the same model under snapshot partitioning at several cluster
   sizes, with and without graph-difference transfer,
3. compare against the hypergraph vertex-partitioning baseline,
4. print a per-configuration breakdown (transfer / compute / comm) from
   the simulated clocks plus the redistribution volumes.

Run:  python examples/distributed_scaling.py
"""

from repro.bench import PointSpec, bench_dtdg, calibrated_overrides, run_point


def run(dtdg, partitioning, num_ranks, use_gd):
    overrides = tuple(sorted(calibrated_overrides(
        "youtube", "tmgcn", memory_headroom=2.0).items()))
    # run_point also applies the paper's nb tuning (§3.1): block count
    # capped at T/P so every rank owns timesteps in every block
    return run_point(dtdg, PointSpec(
        model="tmgcn", num_ranks=num_ranks, use_gd=use_gd,
        num_blocks=4, partitioning=partitioning,
        spec_overrides=overrides, seed=0))


def main() -> None:
    dtdg = bench_dtdg("youtube", "tmgcn")
    print(f"workload: {dtdg}")
    print(f"{'scheme':>12} {'P':>4} {'GD':>3} | {'transfer':>9} "
          f"{'compute':>8} {'comm':>8} {'total':>8} | {'volume':>10}")

    for p in (1, 8, 32, 128):
        for use_gd in (False, True):
            r = run(dtdg, "snapshot", p, use_gd)
            ms = r.breakdown.as_millis()
            print(f"{'snapshot':>12} {p:>4} {'on' if use_gd else 'off':>3}"
                  f" | {ms['transfer_ms']:>7.0f}ms {ms['compute_ms']:>6.0f}ms"
                  f" {ms['comm_ms']:>6.0f}ms {ms['total_ms']:>6.0f}ms"
                  f" | {r.comm_volume_units:>8.0f} fl")

    for p in (8, 32):
        r = run(dtdg, "vertex", p, False)
        ms = r.breakdown.as_millis()
        print(f"{'hypergraph':>12} {p:>4} {'off':>3}"
              f" | {ms['transfer_ms']:>7.0f}ms {ms['compute_ms']:>6.0f}ms"
              f" {ms['comm_ms']:>6.0f}ms {ms['total_ms']:>6.0f}ms"
              f" | {r.comm_volume_units:>8.0f} fl")

    print("\nTakeaways (paper §6): graph-difference cuts the transfer "
          "component;\nsnapshot partitioning's volume stays fixed as P "
          "grows while the\nhypergraph baseline pays irregular-exchange "
          "overheads on top of a\nvolume that grows with P.")


if __name__ == "__main__":
    main()
