"""Train-then-serve: stream live transactions through the model server.

The full production loop the serving subsystem enables:

1. simulate a bank's transaction history with planted laundering
   typologies (AML-Sim),
2. train CD-GCN + a fraud-classification head on the first weeks,
3. persist the trained model as a checkpoint (the train→serve hand-off),
4. boot a :class:`repro.serve.ModelServer` from the checkpoint and
   stream the held-out weeks through it as live edge events, scoring
   accounts as transactions arrive,
5. print flagged accounts, detection quality against the simulator's
   ground truth, and the server's throughput/latency/cache counters.

Run:  python examples/streaming_fraud_scoring.py
"""

import os
import tempfile

import numpy as np

from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.serve import ModelServer, events_between
from repro.tensor import Adam, Tensor
from repro.train import (NodeClassificationTask, compute_laplacians,
                         degree_features, save_model_checkpoint)

WARMUP_T = 8          # timesteps used for training
EMBED = 12


def train(sim, dtdg):
    """Train CD-GCN + fraud head on the warmup prefix."""
    history = dtdg.slice_time(0, WARMUP_T)
    history.set_features(degree_features(history))
    laplacians = compute_laplacians(history)
    frames = [Tensor(f) for f in history.features]
    labels = sim.account_labels()

    model = build_model("cdgcn", in_features=2, hidden=EMBED,
                        embed_dim=EMBED, seed=0)
    task = NodeClassificationTask(labels, WARMUP_T, embed_dim=EMBED,
                                  num_classes=2, seed=0)
    optimizer = Adam(model.parameters() + task.head.parameters(), lr=0.03)
    for epoch in range(60):
        optimizer.zero_grad()
        embeddings = model(laplacians, frames)
        loss = task.loss_full(embeddings)
        loss.backward()
        optimizer.step()
        if epoch % 20 == 0 or epoch == 59:
            print(f"  epoch {epoch:2d}  loss {loss.item():.4f}  "
                  f"train accuracy {task.accuracy(embeddings):.1%}")
    return model, task


def main() -> None:
    config = AMLSimConfig(
        num_accounts=400, num_timesteps=14, background_per_step=700,
        partner_persistence=0.85, num_fan_out=6, num_fan_in=6,
        num_cycles=4, num_scatter_gather=3, pattern_size=10, seed=7)
    sim = generate_amlsim(config)
    dtdg = sim.dtdg
    labels = sim.account_labels()
    print(f"simulated {dtdg.total_nnz} transactions over "
          f"{dtdg.num_timesteps} weeks; {int(labels.sum())} of "
          f"{len(labels)} accounts launder money")

    print(f"\ntraining CD-GCN on the first {WARMUP_T} weeks ...")
    model, task = train(sim, dtdg)

    # persist and boot the server exactly as a deployment would
    ckpt = os.path.join(tempfile.gettempdir(), "amlsim_cdgcn.npz")
    save_model_checkpoint(ckpt, model, "cdgcn", fraud_head=task.head,
                          extra={"dataset": "amlsim", "warmup": WARMUP_T})
    server = ModelServer.from_checkpoint(
        ckpt, dtdg[0], max_batch_size=32, flush_latency_ms=5.0)
    for t in range(1, WARMUP_T):
        server.advance_time(dtdg[t])
    print(f"\nmodel server booted from {ckpt}")

    # stream the held-out weeks as live edge events
    flagged: dict[int, float] = {}
    rng = np.random.default_rng(1)
    for t in range(WARMUP_T, dtdg.num_timesteps):
        server.advance_time()
        events = events_between(server.ingestor.resident, dtdg[t])
        third = max(1, len(events) // 3)
        for lo in range(0, len(events), third):
            batch = events[lo:lo + third]
            server.ingest_events(batch)
            # score the accounts that just transacted, plus a random audit
            touched = {e.src for e in batch} | {e.dst for e in batch}
            audit = set(rng.integers(0, dtdg.num_vertices, 8).tolist())
            queries = {acct: server.submit_fraud(acct)
                       for acct in sorted(touched | audit)}
            server.drain()
            for acct, query in queries.items():
                if query.result >= 0.5:
                    flagged[acct] = max(flagged.get(acct, 0.0),
                                        query.result)
        print(f"  week {t}: {len(events):4d} events streamed, "
              f"{len(flagged)} accounts flagged so far")

    # detection quality of the streaming scores
    predicted = np.zeros(dtdg.num_vertices, dtype=bool)
    predicted[list(flagged)] = True
    tp = int((predicted & (labels == 1)).sum())
    fp = int((predicted & (labels == 0)).sum())
    fn = int((~predicted & (labels == 1)).sum())
    precision = tp / (tp + fp) if tp + fp else float("nan")
    recall = tp / (tp + fn) if tp + fn else float("nan")

    top = sorted(flagged.items(), key=lambda kv: -kv[1])[:10]
    print("\ntop flagged accounts (score, ground truth):")
    for acct, score in top:
        truth = "LAUNDERER" if labels[acct] else "clean"
        print(f"  account {acct:4d}  score {score:.3f}  {truth}")
    print(f"\nstreaming detection: precision {precision:.1%}, "
          f"recall {recall:.1%}")

    stats = server.stats()
    c = stats.counters
    print(f"server: {c.queries_completed} queries in "
          f"{stats.elapsed_s * 1e3:.0f} ms "
          f"({stats.queries_per_second:,.0f} q/s), "
          f"p50 {stats.latency_p50_ms:.2f} ms, "
          f"p99 {stats.latency_p99_ms:.2f} ms")
    print(f"cache: hit rate {c.cache_hit_rate:.1%} over {c.refreshes} "
          f"refreshes ({c.events_ingested} events, "
          f"{c.advances} timeline advances)")


if __name__ == "__main__":
    main()
