"""Distributed telemetry: one dashboard over real worker processes.

Boots a 3-process :class:`repro.exec.ExecRouter` (multiprocess
backend — every shard worker is its own OS process), streams a
15-timestep AML-Sim world through it with tracing on, and shows the
three things PR 8 made possible:

1. **one causal trace per query across processes** — each RPC carries
   a trace-context envelope, the workers open ``worker.rpc`` /
   ``worker.<verb>`` spans parented under the router's ``exec.rpc``
   span, and the finished spans ship back and graft into the router's
   tree;
2. **one registry for the whole cluster** — the router drains each
   worker's metrics over the ``telemetry`` RPC verb and merges them
   under ``worker=<id>`` labels, so ``prometheus()`` on the router
   exports router *and* worker series;
3. **a live SLO-judged dashboard** — p99 latency, shed rate and
   heartbeat-miss targets with error-budget burn rates, rendered by
   ``router.dashboard()``.

Run:  python examples/cluster_dashboard.py
"""

import numpy as np

from repro.exec import ExecRouter
from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import Linear
from repro.obs import Telemetry
from repro.serve import events_between

NUM_TIMESTEPS = 15
NUM_SHARDS = 3


def main() -> None:
    dtdg = generate_amlsim(AMLSimConfig(
        num_accounts=400, num_timesteps=NUM_TIMESTEPS,
        background_per_step=600, partner_persistence=0.9,
        seed=0)).dtdg

    model = build_model("cdgcn", in_features=2, hidden=12, embed_dim=12,
                        seed=0)
    fraud = Linear(model.embed_dim, 2, np.random.default_rng(7))
    telemetry = Telemetry(tracing=True)
    with ExecRouter(model, dtdg[0], backend="multiprocess",
                    num_shards=NUM_SHARDS, fraud_head=fraud,
                    max_batch_size=16, max_inflight=64,
                    telemetry=telemetry) as router:
        slo = router.attach_slo(window=30)
        slo.quantile("p99-latency-ms", "serve_latency_ms", q=99.0,
                     threshold=250.0)
        slo.ratio("shed-rate", "serve_queries_shed_total",
                  "serve_queries_submitted_total", threshold=0.01)
        slo.ratio("heartbeat-miss", "serve_heartbeat_failures_total",
                  "serve_heartbeats_total", threshold=0.01)

        for t in range(1, NUM_TIMESTEPS):
            events = events_between(dtdg[t - 1], dtdg[t])
            for i in range(0, len(events), 300):
                router.ingest_events(events[i:i + 300])
            for u in range(t, t + 8):
                router.submit_link(u, (u + 1) % dtdg.num_vertices)
            router.submit_fraud(t % dtdg.num_vertices)
            router.drain()
            router.advance_time(dtdg[t])

        # drain worker registries + finished spans into the router
        # (dashboard()/prometheus() also do this; with a
        # heartbeat_interval_s the tick loop does it continuously)
        router.harvest_telemetry()

        # -- 1. one cross-process trace --------------------------------------
        # exec.rpc spans nest under the serving spans; find one whose
        # worker-side children were grafted back after the harvest
        print("== one RPC, traced across the process boundary ==")
        stitched = None
        for root in telemetry.tracer.roots:
            for _, span in root.walk():
                if span.name == "exec.rpc" and any(
                        c.name == "worker.rpc" for c in span.children):
                    stitched = span
            if stitched is not None:
                break
        if stitched is not None:
            for depth, span in stitched.walk():
                print(f"  {'  ' * depth}{span.name} "
                      f"[{span.span_id}] {span.duration_ms:.2f}ms")
        print()

        # -- 2. the cluster registry -----------------------------------------
        print("== worker series, harvested into the router registry ==")
        shown = 0
        for line in router.prometheus().splitlines():
            if line.startswith("worker_") and "worker=" in line:
                print(f"  {line}")
                shown += 1
                if shown >= 12:
                    print("  ...")
                    break
        print()

        # -- 3. the dashboard -------------------------------------------------
        print(router.dashboard(title="exec cluster (3 worker processes)"))


if __name__ == "__main__":
    main()
