"""Figure 4 — Base vs graph-difference snapshot transfer (paper §6.2).

For every dataset × model pair and P = 1…128, runs one epoch with the
naive (Base) and the graph-difference (GD) CPU→GPU transfer and reports
the transfer time next to everything else — the paper's stacked bars.

Shape checks (the paper's claims):
* GD never increases transfer time, and reduces it most for the models
  that train on smoothed graphs (TM-GCN, EvolveGCN) — up to ~4x vs ~2x
  for CD-GCN which trains on the raw snapshots;
* GD gains shrink as P grows ((bsize − P)/bsize beneficiaries);
* the overall epoch time improves by up to ~40%;
* the §6.2 memory claim: the non-checkpointed baseline does not run at
  small P, the checkpointed implementation does.
"""

import pytest

from repro.bench import (DATASET_NAMES, GPU_COUNTS, MODEL_LABELS,
                         cached_point, render_table, write_report)
from repro.models import MODEL_NAMES

SMOOTHED_MODELS = ("tmgcn", "egcn")


def _sweep():
    rows = []
    results = {}
    for dataset in DATASET_NAMES:
        for model in MODEL_NAMES:
            for p in GPU_COUNTS:
                base = cached_point(dataset, model, p, use_gd=False)
                gd = cached_point(dataset, model, p, use_gd=True)
                results[(dataset, model, p)] = (base, gd)
                if base is None or gd is None:
                    rows.append((dataset, MODEL_LABELS[model], p,
                                 None, None, None, None, None))
                    continue
                speedup = (base.breakdown.transfer /
                           gd.breakdown.transfer
                           if gd.breakdown.transfer else float("inf"))
                overall = 1.0 - gd.total_ms / base.total_ms
                rows.append((
                    dataset, MODEL_LABELS[model], p,
                    round(base.breakdown.transfer * 1e3, 1),
                    round(gd.breakdown.transfer * 1e3, 1),
                    round(speedup, 2),
                    round(base.total_ms, 1),
                    f"{100 * overall:.0f}%",
                ))
    return rows, results


def test_fig4_graph_difference_transfer(benchmark):
    rows, results = _sweep()
    benchmark.pedantic(
        lambda: cached_point.__wrapped__("epinions", "tmgcn", 8, True),
        rounds=1, iterations=1)
    table = render_table(
        ["dataset", "model", "P", "Base transfer ms", "GD transfer ms",
         "GD transfer speedup", "Base total ms", "overall reduction"],
        rows,
        title="Figure 4: Base vs graph-difference snapshot transfer")
    write_report("fig4_graph_difference", table)

    best_overall = 0.0
    for dataset in DATASET_NAMES:
        for model in MODEL_NAMES:
            gains = []
            for p in GPU_COUNTS:
                base, gd = results[(dataset, model, p)]
                if base is None or gd is None:
                    continue
                # GD never moves more bytes than Base (byte counts are
                # deterministic; slowest-rank seconds can jitter)
                assert gd.transfer_bytes <= \
                    base.transfer_bytes * 1.001, (dataset, model, p)
                gains.append(base.transfer_bytes /
                             max(gd.transfer_bytes, 1))
                best_overall = max(best_overall,
                                   1.0 - gd.total_ms / base.total_ms)
            # gains shrink as P grows (compare smallest vs largest ran)
            assert gains[0] >= gains[-1] - 1e-9, (dataset, model)

    # smoothed models gain more than CD-GCN (paper: up to 4.1x vs 2x);
    # on the densest dataset (AML-Sim) the smoothed gains clear 2.5x
    def small_p_gain(dataset, model):
        for p in GPU_COUNTS:
            base, gd = results[(dataset, model, p)]
            if base is not None and gd is not None:
                return base.transfer_bytes / max(gd.transfer_bytes, 1)
        return None

    for dataset in DATASET_NAMES:
        cd = small_p_gain(dataset, "cdgcn")
        for model in SMOOTHED_MODELS:
            sm = small_p_gain(dataset, model)
            if sm is not None and cd is not None:
                assert sm > cd * 0.95, (dataset, model, sm, cd)
    for model in SMOOTHED_MODELS:
        assert small_p_gain("amlsim", model) > 2.5, model

    # the paper's headline: up to ~40% overall reduction
    assert best_overall > 0.30, f"best overall reduction {best_overall}"


def test_fig4_memory_claim_baseline_vs_checkpoint(benchmark):
    """§6.2: 'the baseline did not execute on a single node … the
    checkpoint based implementation was able to successfully run'."""

    def probe():
        baseline = cached_point("amlsim", "tmgcn", 1, use_gd=True,
                                num_blocks=1, tune_blocks=False)
        checkpointed = cached_point("amlsim", "tmgcn", 1, use_gd=True,
                                    num_blocks=4, tune_blocks=True)
        return baseline, checkpointed

    baseline, checkpointed = benchmark.pedantic(probe, rounds=1,
                                                iterations=1)
    assert baseline is None, "non-checkpointed baseline should OOM at P=1"
    assert checkpointed is not None, "checkpointed run should fit at P=1"
    rows = [("baseline (no checkpoint)", "DNR (out of memory)", "-"),
            ("gradient checkpoint", f"{checkpointed.total_ms:.0f} ms",
             f"{checkpointed.peak_memory_bytes:,} B peak")]
    write_report("fig4_memory_claim", render_table(
        ["implementation", "epoch time", "memory"], rows,
        title="§6.2 memory claim: AML-Sim / TM-GCN on 1 GPU"))
