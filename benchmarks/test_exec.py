"""Real-process execution tier — wall-clock scaling from 1 to 4 workers.

Replays one AML-Sim event + query stream through
:class:`~repro.exec.router.ExecRouter` tiers whose shard workers are
real OS processes (shared-memory blocks, pipe RPC).  The claims under
test:

* the multiprocess tier is *exact* — its gathered embeddings match the
  in-process simulated oracle bit for bit at every process count;
* aggregate throughput over the measured critical path (router busy +
  slowest worker's in-process busy clock) scales ≥ 2x from 1 process
  to 4 (the guarded ``scaling_speedup``; the end-to-end pipelined wall
  ratio is recorded unguarded since it is bounded by host cores);
* the wire discipline holds: RPC bytes stay O(delta + queries) while
  the O(graph) blocks ride shared memory.

Set ``REPRO_SMOKE=1`` for the CI-sized sweep (same shape, smaller
graph).
"""

import os

import pytest

from repro.bench import ExecWorkloadConfig, run_exec_benchmark
from repro.bench.reporting import results_dir


@pytest.fixture(scope="module")
def result():
    config = ExecWorkloadConfig.smoke() \
        if os.environ.get("REPRO_SMOKE") else ExecWorkloadConfig()
    return run_exec_benchmark(config)


def test_exec_reports_written(result):
    assert os.path.exists(os.path.join(results_dir(), "exec_scaling.txt"))
    bench_dir = os.environ.get("REPRO_BENCH_DIR", os.getcwd())
    assert os.path.exists(os.path.join(bench_dir, "BENCH_exec.json"))


def test_real_workers_are_exact(result):
    """Process isolation buys wall-clock, not approximation: every
    multiprocess point matches the simulated oracle bit for bit."""
    assert result.max_abs_divergence == 0.0


def test_every_tier_answers_the_full_stream(result):
    assert result.num_events > 0
    assert result.num_queries > 0
    for p in result.points:
        assert p.stats.counters.queries_completed == result.num_queries


def test_critical_path_scales_across_processes(result):
    """The headline: ≥ 2x aggregate throughput from 1 to 4 processes
    over the core-count-independent critical path."""
    assert result.scaling_speedup >= 2.0, (
        f"4 processes only scaled {result.scaling_speedup:.2f}x over 1")


def test_wire_stays_delta_sized(result):
    """Shared memory carries the O(graph) blocks; the pipe carries
    O(delta + queries).  If a snapshot ever leaks onto the pipe, sent
    bytes jump by orders of magnitude."""
    p4 = result.point(4)
    assert p4.stats.shm_bytes_mapped > 0
    # the whole replay's RPC request traffic stays below one full
    # topology broadcast per streamed timestep
    snapshot_bytes = p4.stats.shm_bytes_mapped
    assert p4.stats.rpc_bytes_sent < snapshot_bytes * 8


def test_halo_traffic_flows(result):
    p4 = result.point(4)
    assert p4.stats.traffic.rows_shipped > 0
    assert p4.stats.traffic.bytes_shipped > 0
    assert p4.stats.counters.cross_shard_events > 0
