"""Kernel layer — incremental operators and row-sliced SpMM.

Replays the AML-Sim serving workload through the kernel layer and
asserts the PR's headline claims:

* incremental Laplacian maintenance is ≥ 3x faster than a full
  operator rebuild per commit;
* the row-sliced refresh path is ≥ 1.5x faster than the full-multiply
  path end-to-end (and the row-sliced SpMM micro-kernel is too);
* none of it costs accuracy: max divergence vs the full-recompute
  reference is ≤ 1e-9 (observed: exactly 0 — the kernels are
  bit-compatible by construction).

Set ``REPRO_SMOKE=1`` to run single timing rounds instead of best-of-3
(CI's kernel-tests shard).  The *workload* is identical either way —
the perf guard compares smoke-measured ratios against the recorded
full-config ones, so the two configurations must differ only in
timing-noise suppression, never in what they measure.
"""

import os

from repro.bench import KernelWorkloadConfig, run_kernels_benchmark
from repro.bench.reporting import results_dir


def _config() -> KernelWorkloadConfig:
    if os.environ.get("REPRO_SMOKE"):
        return KernelWorkloadConfig(rounds=1)
    return KernelWorkloadConfig()


def test_kernel_layer_speedups(benchmark):
    result = benchmark.pedantic(
        lambda: run_kernels_benchmark(_config()), rounds=1, iterations=1)

    # report files land in the standard results pipeline
    assert os.path.exists(os.path.join(results_dir(), "kernels.txt"))
    assert os.path.exists(os.path.join(os.getcwd(), "BENCH_kernels.json"))

    # headline 1: incremental operator maintenance beats the per-commit
    # full rebuild ≥ 3x
    assert result.inc_speedup >= 3.0, (
        f"incremental Ã maintenance only {result.inc_speedup:.2f}x "
        f"faster than a full rebuild")

    # headline 2: the row-sliced refresh beats the full-multiply path
    assert result.refresh_speedup >= 1.5, (
        f"row-sliced serving refresh only {result.refresh_speedup:.2f}x "
        f"faster than full-multiply refresh")
    assert result.spmm_speedup >= 1.5, (
        f"row-sliced SpMM only {result.spmm_speedup:.2f}x faster than "
        f"the full multiply")

    # exactness: the kernels trade no accuracy whatsoever
    assert result.inc_max_divergence <= 1e-9
    assert result.spmm_divergence <= 1e-9
    assert result.refresh_divergence <= 1e-9

    # headline 3: the backend matrix covers every available backend and
    # none diverges from reference beyond float-noise
    matrix = result.backend_matrix
    assert "reference" in matrix
    for name, entry in matrix.items():
        assert entry["max_divergence"] <= 1e-9, (
            f"backend {name!r} diverges from reference by "
            f"{entry['max_divergence']:.2e}")
    for name, entry in matrix.items():
        if name == "reference":
            continue
        # accelerated backends must beat reference on the fused
        # gather-GEMM frontier kernel (spmm_rows is spmm_patch's
        # compute core); numba's jitted loop carries the 2x bar from
        # the PR acceptance, other native backends 1.2x (cnative
        # measures 1.5-3.8x run to run; the loose floor absorbs
        # shared-runner noise)
        floor = 2.0 if name == "numba" else 1.2
        for kernel in ("spmm_rows", "spmm_patch"):
            ratio = entry[kernel]["vs_reference"]
            assert ratio >= floor, (
                f"backend {name!r} {kernel} only {ratio:.2f}x vs "
                f"reference (floor {floor}x)")
