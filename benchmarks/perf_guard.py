"""CI perf guard: fail when recorded speedup ratios regress > 20%.

Usage::

    python benchmarks/perf_guard.py RECORDED.json FRESH.json [slack]

Compares every ``"speedup"`` ratio recorded in a committed bench json
(``BENCH_kernels.json``, ``BENCH_training.json``, …) against a freshly
measured one and exits non-zero if any fresh ratio falls below
``slack`` (default 0.8, i.e. a >20% regression) of the recorded value.
Ratios — not absolute times — are compared, so the guard is robust to
runner hardware differences.  Guarded entries are discovered by walking
the recorded json for keys named ``speedup`` or ending ``_speedup``
(``throughput_speedup``); benches deliberately name noisy, unguarded
observations something else (e.g. ``wall_ratio``).
"""

import json
import sys


def speedup_entries(payload, prefix=""):
    """Yield (dotted-path, value) for every guarded speedup key."""
    if not isinstance(payload, dict):
        return
    for key in sorted(payload):
        path = f"{prefix}.{key}" if prefix else key
        value = payload[key]
        if (key == "speedup" or key.endswith("_speedup")) and \
                isinstance(value, (int, float)):
            yield path, float(value)
        else:
            yield from speedup_entries(value, path)


def lookup(payload, path):
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__)
        return 2
    with open(argv[1]) as fh:
        recorded = json.load(fh)
    with open(argv[2]) as fh:
        fresh = json.load(fh)
    slack = float(argv[3]) if len(argv) > 3 else 0.8

    entries = list(speedup_entries(recorded))
    if not entries:
        print("no recorded speedup ratios found — nothing to guard")
        return 2
    failed = False
    for path, want in entries:
        got = lookup(fresh, path)
        if got is None:
            print(f"{path}: recorded {want:.2f}x, MISSING in fresh run")
            failed = True
            continue
        got = float(got)
        ok = got >= slack * want
        print(f"{path}: recorded {want:.2f}x, fresh {got:.2f}x "
              f"(floor {slack * want:.2f}x) {'OK' if ok else 'REGRESSED'}")
        failed |= not ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
