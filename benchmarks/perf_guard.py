"""CI perf guard: fail when kernel speedups regress > 20%.

Usage::

    python benchmarks/perf_guard.py RECORDED.json FRESH.json [slack]

Compares the speedup ratios recorded in the repo's committed
``BENCH_kernels.json`` against a freshly measured one and exits
non-zero if any fresh ratio falls below ``slack`` (default 0.8, i.e. a
>20% regression) of the recorded value.  Ratios — not absolute times —
are compared, so the guard is robust to runner hardware differences.
"""

import json
import sys

RATIOS = [
    ("inc_laplacian", "speedup"),
    ("spmm_rows", "speedup"),
    ("serving_refresh", "speedup"),
]


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__)
        return 2
    with open(argv[1]) as fh:
        recorded = json.load(fh)
    with open(argv[2]) as fh:
        fresh = json.load(fh)
    slack = float(argv[3]) if len(argv) > 3 else 0.8

    failed = False
    for section, key in RATIOS:
        want = recorded[section][key]
        got = fresh[section][key]
        ok = got >= slack * want
        print(f"{section}.{key}: recorded {want:.2f}x, fresh {got:.2f}x "
              f"(floor {slack * want:.2f}x) {'OK' if ok else 'REGRESSED'}")
        failed |= not ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
