"""Ablation — graph-difference gain vs temporal overlap (paper §3.2/§6.2).

The GD transfer's entire value proposition is the overlap between
consecutive snapshots.  Two sweeps:

1. churn sweep — synthetic DTDGs with controlled edge turnover; the GD
   byte savings must decay from ~3-5x (near-static topology) through
   ~1x (independent snapshots, where GD degenerates to shipping two
   full index lists);
2. smoothing sweep — the M-product window applied to a fixed raw graph;
   wider windows magnify overlap and therefore GD savings, which is why
   the smoothed models (TM-GCN, EvolveGCN) gain more than CD-GCN in the
   paper's Fig. 4.
"""

from repro.bench import render_table, write_report
from repro.graph import evolving_dtdg, sequence_transfer_stats
from repro.train import apply_mproduct_smoothing

N, T, M = 200, 40, 800


def _churn_sweep():
    out = {}
    for churn in (0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0):
        d = evolving_dtdg(N, T, M, churn=churn, seed=3)
        stats = sequence_transfer_stats(d.snapshots)
        out[churn] = (d.mean_topology_overlap(), stats.savings_ratio)
    return out


def _window_sweep():
    raw = evolving_dtdg(N, T, M, churn=0.5, seed=4)
    out = {}
    for window in (1, 2, 4, 8, 16):
        smoothed = apply_mproduct_smoothing(raw, window) \
            if window > 1 else raw
        stats = sequence_transfer_stats(smoothed.snapshots)
        out[window] = (smoothed.mean_topology_overlap(),
                       stats.savings_ratio)
    return out


def test_ablation_overlap_drives_gd_gains(benchmark):
    churn = benchmark.pedantic(_churn_sweep, rounds=1, iterations=1)
    window = _window_sweep()

    rows = [("churn", f"{c:g}", round(ov, 3), round(sv, 2))
            for c, (ov, sv) in churn.items()]
    rows += [("M-window", w, round(ov, 3), round(sv, 2))
             for w, (ov, sv) in window.items()]
    table = render_table(
        ["sweep", "value", "overlap", "GD savings ratio"], rows,
        title="Ablation: snapshot overlap vs graph-difference savings")
    write_report("ablation_overlap", table)

    ratios = [sv for _, sv in churn.values()]
    # monotone decay with churn
    assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))
    # near-static graphs approach the wire-format ceiling (values only)
    assert churn[0.0][1] > 4.0
    # independent snapshots: GD is no better than naive
    assert churn[1.0][1] < 1.05

    w_ratios = [sv for _, sv in window.values()]
    # wider smoothing windows monotonically raise GD savings ...
    assert all(a <= b + 1e-9 for a, b in zip(w_ratios, w_ratios[1:]))
    # ... explaining the smoothed models' larger gains (paper §6.2)
    assert window[16][1] > 2.0 * window[1][1]
