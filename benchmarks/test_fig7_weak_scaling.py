"""Figure 7 — weak scaling on random graphs (paper §6.3).

The paper's protocol: random DTDGs with T = 256 and edge density f = 3
(m = N·f edges per snapshot, snapshots independent), starting at
N = 2^14 for P = 1 and doubling N with P up to P = 128.  Throughput is
the aggregate edge count over the epoch time, and the speedup normalizes
throughput to P = 1.

Shape checks: TM-GCN and CD-GCN reach large (tens of x) weak-scaling
speedups with a brief dip crossing the node boundary at P = 16;
EvolveGCN, whose only communication is gradient aggregation, scales
best of the three (superlinear in the paper).
"""

from functools import lru_cache

from repro.bench import (GPU_COUNTS, MODEL_LABELS, PointSpec, render_table,
                         run_point, speedup_series, write_report)
from repro.cluster import GIB, ClusterSpec
from repro.graph.generators import random_dtdg
from repro.models import MODEL_NAMES
from repro.train.preprocess import degree_features, smooth_for_model

T_STEPS = 132          # ≥ P=128, mirroring the paper's T=256 ≥ P
DENSITY = 3.0          # paper's f
BASE_N = 48            # N at P=1; doubles with P (paper: 2^14)
SMOOTH_WINDOW = 8
PAPER_N0 = 2 ** 14


@lru_cache(maxsize=None)
def _workload(model_name, num_ranks):
    n = BASE_N * num_ranks
    raw = random_dtdg(n, T_STEPS, DENSITY, seed=7,
                      name=f"weak-{num_ranks}")
    raw.set_features(degree_features(raw))
    smoothed = smooth_for_model(raw, model_name, edge_life=SMOOTH_WINDOW,
                                window=SMOOTH_WINDOW)
    if smoothed is not raw and smoothed.features is None:
        smoothed.set_features(raw.features)
    return smoothed


@lru_cache(maxsize=None)
def _hardware(model_name):
    """One fixed hardware calibration per model, derived from the largest
    configuration (weak scaling keeps the machine constant as P grows)."""
    largest = _workload(model_name, GPU_COUNTS[-1])
    # paper's largest TM-GCN weak-scaling run: 2.1B aggregate edges
    edge_factor = largest.total_nnz / 2.1e9
    feature_factor = (largest.num_vertices * T_STEPS) / (1e6 * 256)
    base = ClusterSpec()
    return dict(
        dense_flops=base.dense_flops * edge_factor,
        sparse_flops=base.sparse_flops * edge_factor,
        h2d_bandwidth=base.h2d_bandwidth * edge_factor,
        intra_bandwidth=base.intra_bandwidth * feature_factor,
        inter_bandwidth=base.inter_bandwidth * feature_factor,
        gpu_memory_bytes=int(32 * GIB * edge_factor * 4.0),
    )


def _sweep(model_name):
    overrides = tuple(sorted(_hardware(model_name).items()))
    through = {}
    for p in GPU_COUNTS:
        dtdg = _workload(model_name, p)
        result = run_point(dtdg, PointSpec(
            model=model_name, num_ranks=p, use_gd=True, num_blocks=4,
            spec_overrides=overrides, seed=0))
        if result is None:
            through[p] = None
        else:
            through[p] = dtdg.total_nnz / (result.breakdown.total + 1e-12)
    return through


def test_fig7_weak_scaling(benchmark):
    throughputs = {m: _sweep(m) for m in MODEL_NAMES}
    benchmark.pedantic(lambda: _sweep("egcn"), rounds=1, iterations=1)

    rows = []
    speedups = {}
    for model_name in MODEL_NAMES:
        series = throughputs[model_name]
        ran = {p: v for p, v in series.items() if v is not None}
        ref = ran[min(ran)] / min(ran)
        speedups[model_name] = {p: v / ref for p, v in ran.items()}
        for p in GPU_COUNTS:
            v = series.get(p)
            rows.append((MODEL_LABELS[model_name], p,
                         BASE_N * p,
                         _workload(model_name, p).total_nnz,
                         None if v is None else round(v / 1e6, 2),
                         None if v is None else
                         round(speedups[model_name][p], 1)))
    table = render_table(
        ["model", "P", "N", "aggregate nnz", "Medges/s", "speedup"],
        rows, title=f"Figure 7: weak scaling (random graphs, T={T_STEPS},"
                    f" f={DENSITY:g}, N={BASE_N}·P)")
    write_report("fig7_weak_scaling", table)

    for model_name in MODEL_NAMES:
        s = speedups[model_name]
        # weak scaling reaches large speedups at P=128
        assert s[128] > 10.0, (model_name, s)
        # EvolveGCN scales best (communication-free)
        assert speedups["egcn"][128] >= s[128] - 1e-9
    # communicating models dip crossing the node boundary (efficiency)
    for model_name in ("tmgcn", "cdgcn"):
        s = speedups[model_name]
        assert s[16] / 16 < s[8] / 8, model_name
