"""Ablation — checkpoint block count ``nb`` (paper §3.1).

The paper: "the parameter nb not only determines GPU memory usage, but
also influences the execution time … the two components can be balanced
by adjusting nb."  This bench sweeps nb on AML-Sim / TM-GCN at P = 1 and
reports peak memory and epoch-time components.

Shape checks: intra-block memory falls as nb grows while the carry
payload grows; checkpointing (nb > 1) pays the double CPU→GPU transfer;
and the overall memory at nb=8 is far below the nb=1 baseline.
"""

from repro.bench import (bench_dtdg, calibrated_overrides, PointSpec,
                         render_table, run_point, write_report)

BLOCK_COUNTS = (1, 2, 4, 8, 16)


def _sweep():
    dtdg = bench_dtdg("amlsim", "tmgcn")
    overrides = tuple(sorted(calibrated_overrides(
        "amlsim", "tmgcn", memory_headroom=100.0).items()))  # no OOM here
    out = {}
    for nb in BLOCK_COUNTS:
        out[nb] = run_point(dtdg, PointSpec(
            model="tmgcn", num_ranks=1, num_blocks=nb, tune_blocks=False,
            spec_overrides=overrides, seed=0))
    return out


def test_ablation_checkpoint_blocks(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for nb, r in results.items():
        rows.append((nb, f"{r.peak_memory_bytes:,}",
                     round(r.breakdown.transfer * 1e3, 1),
                     round(r.total_ms, 1)))
    table = render_table(
        ["nb", "peak memory B", "transfer ms", "total ms"],
        rows, title="Ablation: checkpoint block count (AML-Sim / TM-GCN, "
                    "P=1)")
    write_report("ablation_checkpoint", table)

    peak = {nb: r.peak_memory_bytes for nb, r in results.items()}
    transfer = {nb: r.breakdown.transfer for nb, r in results.items()}
    # memory strictly improves from baseline to deep checkpointing
    assert peak[8] < 0.5 * peak[1]
    # more blocks -> less resident state, monotone through the sweep
    assert peak[1] > peak[2] > peak[4] > peak[8]
    # checkpointing pays the forward + re-run double transfer
    assert transfer[2] > 1.5 * transfer[1]
    # smaller blocks shrink GD's benefit, so transfer keeps creeping up
    assert transfer[16] >= transfer[2]
