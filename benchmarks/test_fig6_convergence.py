"""Figure 6 — convergence under snapshot vs hypergraph partitioning
(paper §6.4).

Trains all three models on AML-Sim link prediction (θ = 0.1) under both
distribution schemes and compares the loss / test-accuracy curves.

The paper's claim: "both the schemes simulate the underlying sequential
algorithms faithfully … their convergence behaviors are identical,
except for floating point accumulation errors."  Our engines share one
autograd graph, so the curves must agree to numerical noise.
"""

import numpy as np

from repro.bench import (bench_dtdg, calibrated_overrides, render_table,
                         write_report)
from repro.cluster import Cluster
from repro.models import MODEL_NAMES, build_model
from repro.train import (ConvergenceCurve, DistConfig, DistributedTrainer,
                         LinkPredictionTask)

EPOCHS = 24
RANKS = 4


def _run_curve(model_name, partitioning):
    dtdg = bench_dtdg("amlsim", model_name)
    model = build_model(model_name, in_features=dtdg.feature_dim, seed=0)
    task = LinkPredictionTask(dtdg, embed_dim=model.embed_dim, theta=0.3,
                              seed=0)
    overrides = calibrated_overrides("amlsim", model_name,
                                     memory_headroom=2.0)
    cluster = Cluster.of_size(RANKS, **overrides)
    cfg = DistConfig(partitioning=partitioning, num_blocks=2,
                     learning_rate=0.01, seed=0)
    trainer = DistributedTrainer(model, dtdg, task, cluster, cfg)
    curve = ConvergenceCurve()
    for result in trainer.fit(EPOCHS):
        curve.record(result)
    return curve


def test_fig6_convergence_identical(benchmark):
    curves = {}
    for model_name in MODEL_NAMES:
        curves[model_name] = {
            "snapshot": _run_curve(model_name, "snapshot"),
            "hypergraph": _run_curve(model_name, "vertex"),
        }
    benchmark.pedantic(lambda: _run_curve("tmgcn", "snapshot"),
                       rounds=1, iterations=1)

    rows = []
    for model_name in MODEL_NAMES:
        snap = curves[model_name]["snapshot"]
        hyper = curves[model_name]["hypergraph"]
        for epoch in range(0, EPOCHS, 4):
            rows.append((model_name, epoch + 1,
                         round(snap.losses[epoch], 6),
                         round(hyper.losses[epoch], 6),
                         round(snap.accuracies[epoch], 3),
                         round(hyper.accuracies[epoch], 3)))
    table = render_table(
        ["model", "epoch", "loss (snapshot)", "loss (hypergraph)",
         "acc (snapshot)", "acc (hypergraph)"],
        rows, title="Figure 6: convergence, snapshot vs hypergraph "
                    "partitioning (AML-Sim, link prediction)")
    write_report("fig6_convergence", table)

    for model_name in MODEL_NAMES:
        snap = curves[model_name]["snapshot"]
        hyper = curves[model_name]["hypergraph"]
        # identical up to float accumulation noise — the paper's claim
        assert snap.max_divergence(hyper) < 1e-6, model_name
        # training converges (min over the tail: the paper notes
        # EvolveGCN's loss "shows considerable fluctuations")
        assert min(snap.losses[-5:]) < snap.losses[0], model_name
        # link prediction reaches better than coin flipping
        assert max(snap.accuracies) > 0.5, model_name
        np.testing.assert_allclose(snap.accuracies, hyper.accuracies,
                                   atol=1e-6)
