"""Sharded serving throughput — scaling the tier from 1 to 8 shards.

Replays one AML-Sim event + query stream through sharded serving tiers
at N = 1, 2, 4, 8 shards.  The claims under test:

* aggregate throughput (total queries over the simulated-parallel
  critical path: router busy time + slowest worker) scales ≥ 2.5x from
  N=1 to N=4;
* sharding is exact — the N=8 tier's gathered embeddings match a
  single-worker full recompute to fp64 rounding;
* the offered load spreads evenly (per-shard query skew stays small)
  and the halo machinery is genuinely exercised (ghost state ships
  across boundaries, some query cones cross shards).
"""

import os

import pytest

from repro.bench import ShardedWorkloadConfig, run_sharded_benchmark
from repro.bench.reporting import results_dir


@pytest.fixture(scope="module")
def result():
    return run_sharded_benchmark(ShardedWorkloadConfig())


def test_sharded_reports_written(result):
    assert os.path.exists(
        os.path.join(results_dir(), "sharded_serving.txt"))
    bench_dir = os.environ.get("REPRO_BENCH_DIR", os.getcwd())
    assert os.path.exists(
        os.path.join(bench_dir, "BENCH_sharded_serving.json"))


def test_sharded_tier_is_exact(result):
    """Sharded incremental serving buys throughput with routing, not
    approximation."""
    assert result.max_abs_divergence < 1e-6


def test_every_tier_answers_the_full_stream(result):
    assert result.num_events > 0
    for p in result.points:
        assert p.stats.counters.queries_completed == result.num_queries


def test_throughput_scales_across_shards(result):
    """The headline: ≥ 2.5x aggregate throughput from N=1 to N=4."""
    assert result.scaling(4) >= 2.5, (
        f"N=4 sharding only scaled {result.scaling(4):.2f}x over N=1")
    # N=8 must not regress below N=4 by more than measurement noise
    assert result.scaling(8) >= result.scaling(4) * 0.85


def test_work_division_tracks_shard_count(result):
    """Deterministic work counters: each shard recomputes only its
    covered share, so the slowest worker's recompute load drops as N
    grows (immune to CI timing noise)."""
    rows1 = result.point(1).stats.counters.rows_recomputed
    rows4 = result.point(4).stats.counters.rows_recomputed
    # total tier work grows only by the halo overlap, far below 4x
    assert rows4 < 2.0 * rows1
    # and the halo is tight: coverage stays well under 2x the vertex set
    assert result.point(4).coverage_rows < 2.0 * result.point(1).coverage_rows


def test_load_balance_and_cross_shard_traffic(result):
    for p in result.points:
        assert p.stats.load_skew < 1.25
    p4 = result.point(4).stats
    assert p4.traffic.rows_shipped > 0
    assert p4.traffic.bytes_shipped > 0
    assert p4.counters.halo_dirty_rows > 0
    assert p4.counters.remote_row_fetches > 0
    assert p4.counters.cross_shard_events > 0
