"""Training tier — cross-timestep aggregation reuse.

Replays the AML-Sim training workloads through both trainers and
asserts the PR's headline claims:

* reuse-enabled per-epoch forward is ≥ 2x faster than the always-full
  baseline for TM-GCN and EvolveGCN on the dense (aggregation-heavy)
  workload — CD-GCN's forward is dominated by its per-vertex LSTM, so
  its wall ratio is reported rather than asserted, while its
  aggregation-stage FLOPs drop ≥ 2x like the others';
* chaining layer-0 products through the timeline's GD deltas (the
  serving-regime workload) beats a full SpMM per timestep;
* none of it costs accuracy: max loss divergence vs the always-full
  baseline is ≤ 1e-9 for all three models on the single-device trainer
  AND all three distributed partition modes (observed: exactly 0);
* under vertex and hybrid partitioning, the delta-halo exchanges move
  strictly less volume than the always-full exchanges.

Set ``REPRO_SMOKE=1`` for fewer epochs (CI's train-tests shard) — the
*workload* is identical, so the perf guard compares like-for-like
speedup ratios against the recorded ``BENCH_training.json``.
"""

import os

from repro.bench import TrainingWorkloadConfig, run_training_benchmark
from repro.bench.reporting import results_dir


def _config() -> TrainingWorkloadConfig:
    if os.environ.get("REPRO_SMOKE"):
        return TrainingWorkloadConfig(epochs=2, div_epochs=2)
    return TrainingWorkloadConfig()


def test_training_reuse_speedups(benchmark):
    result = benchmark.pedantic(
        lambda: run_training_benchmark(_config()), rounds=1, iterations=1)

    # report files land in the standard results pipeline
    assert os.path.exists(os.path.join(results_dir(), "training.txt"))
    assert os.path.exists(os.path.join(os.getcwd(), "BENCH_training.json"))

    # headline 1: per-epoch forward ≥ 2x on the delta-friendly models
    # (recorded: ~2.9x EvolveGCN, ~2.2x TM-GCN; TM-GCN's asserted floor
    # leaves headroom for its M-transform's extra dense share on noisy
    # runners — the recorded ratio itself clears 2x)
    assert result.forward_speedup("egcn") >= 2.0, (
        f"egcn reuse-enabled per-epoch forward only "
        f"{result.forward_speedup('egcn'):.2f}x vs always-full")
    assert result.forward_speedup("tmgcn") >= 1.7, (
        f"tmgcn reuse-enabled per-epoch forward only "
        f"{result.forward_speedup('tmgcn'):.2f}x vs always-full")

    # the aggregation stage itself pays ≥ 2x fewer sparse FLOPs for
    # every model (deterministic, cache-reported)
    for name in ("tmgcn", "egcn", "cdgcn"):
        assert result.agg_flop_speedup(name) >= 2.0, (
            f"{name} aggregation FLOPs only "
            f"{result.agg_flop_speedup(name):.2f}x below always-full")

    # headline 2: delta patching beats per-timestep full SpMM (the
    # recorded ratio is ~2-3x; the floor leaves noise headroom)
    assert result.patch_speedup >= 1.3, (
        f"layer-0 delta patching only {result.patch_speedup:.2f}x "
        f"faster than a full SpMM per timestep")

    # exactness: identical numerics everywhere (single + all 3 modes)
    assert result.max_divergence <= 1e-9

    # delta halos strictly shrink the exchanged volume
    for mode, vols in result.halo_volumes.items():
        assert vols["delta_run_units"] < vols["full_run_units"], (
            f"{mode} delta-halo volume did not shrink")
        assert vols["delta_run_units"] < \
            vols["delta_run_full_equivalent_units"]
