"""Serving throughput — incremental cache vs full recompute.

Replays an AML-Sim event stream (micro-batched edge events interleaved
with link/fraud queries) against two identically configured model
servers.  The claims under test:

* incremental, k-hop cache-invalidated inference answers the same query
  stream at ≥ 2x the throughput of per-refresh full recompute;
* the two modes stay numerically indistinguishable — the speedup is
  bought with bookkeeping, not approximation;
* the incremental server actually serves most rows from cache.
"""

import math
import os

import pytest

from repro.bench import ServingWorkloadConfig, run_serving_benchmark
from repro.bench.reporting import results_dir


def test_serving_incremental_beats_full_recompute(benchmark):
    config = ServingWorkloadConfig()
    result = benchmark.pedantic(
        lambda: run_serving_benchmark(config), rounds=1, iterations=1)

    # report file lands in the standard results pipeline
    assert os.path.exists(
        os.path.join(results_dir(), "serving_throughput.txt"))

    # both servers answered the full query stream
    assert result.incremental.counters.queries_completed == \
        result.num_queries
    assert result.full.counters.queries_completed == result.num_queries
    assert result.num_events > 0

    # exactness: incremental serving is not an approximation
    assert result.max_abs_divergence < 1e-6

    # the headline: ≥ 2x throughput over full recompute
    assert result.throughput_speedup >= 2.0, (
        f"incremental serving only {result.throughput_speedup:.2f}x over "
        f"full recompute")

    # and the speedup comes from the cache, not from doing less work
    inc = result.incremental.counters
    full = result.full.counters
    assert inc.rows_recomputed < full.rows_recomputed
    assert inc.cache_hit_rate > 0.5


def test_serving_latency_percentiles_reported():
    """Micro-batching must produce finite, ordered latency percentiles."""
    config = ServingWorkloadConfig(num_accounts=400,
                                   background_per_step=500,
                                   num_timesteps=8, warmup_timesteps=3,
                                   event_batches_per_step=4)
    result = run_serving_benchmark(config, report_name=None)
    for stats in (result.incremental, result.full):
        assert not math.isnan(stats.latency_p50_ms)
        assert stats.latency_p50_ms <= stats.latency_p99_ms
        assert stats.latency_p99_ms < 1e4


def test_serving_cache_advantage_grows_with_graph_size():
    """The incremental win scales with resident-graph size: deltas stay
    event-sized while full recompute scales with N.  Asserted on the
    deterministic cache counters (row economics), not wall time, so the
    check is immune to CI timing noise."""
    small = run_serving_benchmark(
        ServingWorkloadConfig(num_accounts=400, background_per_step=500,
                              num_timesteps=8, warmup_timesteps=3),
        report_name=None)
    large = run_serving_benchmark(
        ServingWorkloadConfig(num_timesteps=8, warmup_timesteps=3),
        report_name=None)
    assert large.incremental.counters.cache_hit_rate > \
        small.incremental.counters.cache_hit_rate

    def recompute_fraction(result):
        inc = result.incremental.counters
        return inc.rows_recomputed / max(result.full.counters.
                                         rows_recomputed, 1)

    assert recompute_fraction(large) < recompute_fraction(small)
