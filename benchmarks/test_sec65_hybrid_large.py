"""§6.5 — hybrid partitioning for snapshots too large for one GPU.

The paper trains TM-GCN on two AML-Sim variants whose snapshots exceed a
single GPU's memory, by splitting every snapshot row-wise across a
2-GPU group.  We reproduce the setup end-to-end: two "large" AML-Sim
workloads, a GPU memory budget derived from the measured single-GPU
footprint so that one GPU genuinely cannot hold the model state, and a
2-rank hybrid run that trains to better-than-chance link-prediction
accuracy (the paper reports 63.8% / 65.8%).
"""

from functools import lru_cache

from repro.bench import render_table, write_report
from repro.cluster import Cluster
from repro.errors import DeviceOOM
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.train import (DistConfig, DistributedTrainer, LinkPredictionTask,
                         apply_mproduct_smoothing, degree_features)

EPOCHS = 25
VARIANTS = {
    # name -> (accounts, timesteps, background per step) — "Large-2" has
    # ~1.5x the edges of "Large-1", like the paper's 2.2B vs 3.2B pair
    "AMLSim-Large-1": (260, 40, 700),
    "AMLSim-Large-2": (260, 40, 1050),
}


@lru_cache(maxsize=None)
def _large_dtdg(name):
    accounts, t_steps, background = VARIANTS[name]
    result = generate_amlsim(AMLSimConfig(
        num_accounts=accounts, num_timesteps=t_steps,
        background_per_step=background, partner_persistence=0.85,
        num_fan_out=6, num_fan_in=6, num_cycles=5, num_scatter_gather=3,
        seed=11))
    raw = result.dtdg
    raw.set_features(degree_features(raw))
    smoothed = apply_mproduct_smoothing(raw, window=8)
    smoothed.name = name
    return smoothed


def _memory_budget(dtdg):
    """A per-GPU budget below the single-GPU footprint of this workload
    (≈60% of it), so the snapshot must be split to fit."""
    model = build_model("tmgcn", in_features=dtdg.feature_dim, seed=0)
    train_t = dtdg.num_timesteps - 1
    per_step = (dtdg.total_nnz // dtdg.num_timesteps) * 20 + \
        dtdg.num_vertices * dtdg.feature_dim * 4
    footprint = train_t * (per_step +
                           2 * model.activation_bytes_per_step(
                               dtdg.num_vertices))
    return int(0.6 * footprint)


def _run(name, num_ranks, group_size):
    dtdg = _large_dtdg(name)
    model = build_model("tmgcn", in_features=dtdg.feature_dim, seed=0)
    task = LinkPredictionTask(dtdg, embed_dim=model.embed_dim, theta=0.1,
                              seed=0)
    cluster = Cluster.of_size(num_ranks,
                              gpu_memory_bytes=_memory_budget(dtdg))
    cfg = DistConfig(partitioning="hybrid", group_size=group_size,
                     learning_rate=0.02, seed=0)
    trainer = DistributedTrainer(model, dtdg, task, cluster, cfg)
    return trainer.fit(EPOCHS)


def test_sec65_hybrid_splits_large_snapshots(benchmark):
    rows = []
    for name in VARIANTS:
        dtdg = _large_dtdg(name)
        # single GPU: the workload does not fit
        try:
            _run(name, num_ranks=1, group_size=1)
            single_ok = True
        except DeviceOOM:
            single_ok = False
        assert not single_ok, f"{name} unexpectedly fit on one GPU"

        # two GPUs, each holding half of every snapshot: trains fine
        results = _run(name, num_ranks=2, group_size=2)
        accuracy = results[-1].test_accuracy
        rows.append((name, dtdg.num_timesteps, dtdg.total_nnz,
                     f"{_memory_budget(dtdg):,} B",
                     f"{100 * accuracy:.1f}%"))
        assert results[-1].loss < results[0].loss, name
        assert accuracy > 0.55, (name, accuracy)

    benchmark.pedantic(lambda: _run("AMLSim-Large-1", 2, 2)[-1],
                       rounds=1, iterations=1)
    table = render_table(
        ["dataset", "T", "nnz", "per-GPU budget", "test accuracy"],
        rows, title="§6.5: TM-GCN on large snapshots, split across a "
                    "2-GPU group (paper: 63.8% / 65.8%)")
    write_report("sec65_hybrid_large", table)
