"""Resilience bench — availability and recovery under the fault storm.

Replays one AML-Sim stream through four exec-tier configurations
(fault-free baseline, unprotected storm, bounded-staleness degraded,
2-way replicated) and asserts the resilience layer's claims:

* the replicated tier rides out the storm **bit-exact** against the
  fault-free baseline — retries, dedup and failover are lossless;
* replication buys real availability over the unprotected tier under
  the identical seeded storm (the guarded ``availability_speedup``);
* degraded bounded-staleness serving sits strictly between the two.

Set ``REPRO_SMOKE=1`` for the CI-sized storm (same shape and crash
point, smaller graph).
"""

import os

import pytest

from repro.bench import ResilienceWorkloadConfig, run_resilience_benchmark
from repro.bench.reporting import results_dir


@pytest.fixture(scope="module")
def result():
    config = ResilienceWorkloadConfig.smoke() \
        if os.environ.get("REPRO_SMOKE") else ResilienceWorkloadConfig()
    return run_resilience_benchmark(config)


def test_resilience_reports_written(result):
    assert os.path.exists(os.path.join(results_dir(), "resilience.txt"))
    bench_dir = os.environ.get("REPRO_BENCH_DIR", os.getcwd())
    assert os.path.exists(os.path.join(bench_dir, "BENCH_resilience.json"))


def test_storm_actually_stormed(result):
    for name in ("unprotected", "degraded", "replicated"):
        mode = result.mode(name)
        assert mode.faults_injected > 10
        assert mode.replica_deaths >= 1


def test_replicated_storm_is_bit_exact(result):
    """Retries + dedup + failover are lossless: the replicated tier's
    final embeddings match the fault-free baseline exactly."""
    assert result.replicated_divergence == 0.0


def test_replicated_availability_is_total(result):
    replicated = result.mode("replicated")
    assert replicated.availability == 1.0
    assert replicated.shed == 0
    assert replicated.ops_failed == 0
    assert replicated.failovers >= 1


def test_unprotected_tier_loses_queries(result):
    """Without replicas the scheduled crash takes the shard down for
    good: availability drops and tier operations fail."""
    unprotected = result.mode("unprotected")
    assert unprotected.availability < 1.0
    assert unprotected.shed > 0
    assert unprotected.ops_failed > 0


def test_degraded_serving_recovers_availability(result):
    """Bounded-staleness answers put degraded availability strictly
    above the unprotected tier, at the cost of stale results."""
    degraded = result.mode("degraded")
    assert degraded.availability > result.mode("unprotected").availability
    assert degraded.degraded > 0
    assert degraded.ops_failed == 0


def test_availability_speedup_is_material(result):
    assert result.availability_speedup >= 1.2


def test_baseline_is_clean(result):
    baseline = result.mode("baseline")
    assert baseline.availability == 1.0
    assert baseline.faults_injected == 0
    assert baseline.rpc_retries == 0
