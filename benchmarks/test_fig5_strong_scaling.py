"""Figure 5 — strong scaling of snapshot partitioning (paper §6.3).

For every dataset × model pair and P = 1…128 (GD transfer on), reports
the execution-time breakdown (transfer / compute / comm) plus the
per-model speedup summary, using the paper's convention: the reference
point is the smallest P that ran, assigned speedup P.

Shape checks:
* compute time scales down near-linearly with P;
* for TM-GCN and CD-GCN communication becomes the bottleneck at large P,
  with the node-boundary dip at P=16 (8 GPUs per node);
* EvolveGCN (communication-free) scales best;
* best-case speedup lands in the paper's ~30x-at-128 regime.
"""

from repro.bench import (DATASET_NAMES, GPU_COUNTS, MODEL_LABELS,
                         cached_point, render_table, speedup_series,
                         write_report)
from repro.models import MODEL_NAMES


def _collect(model):
    per_dataset = {}
    for dataset in DATASET_NAMES:
        per_dataset[dataset] = {
            p: cached_point(dataset, model, p, use_gd=True)
            for p in GPU_COUNTS}
    return per_dataset


def test_fig5_strong_scaling(benchmark):
    all_results = {model: _collect(model) for model in MODEL_NAMES}
    benchmark.pedantic(
        lambda: cached_point.__wrapped__("youtube", "cdgcn", 8, True),
        rounds=1, iterations=1)

    rows = []
    summary_rows = []
    for model in MODEL_NAMES:
        for dataset in DATASET_NAMES:
            results = all_results[model][dataset]
            times = {p: (r.total_ms if r else None)
                     for p, r in results.items()}
            speedups = speedup_series(times)
            for p in GPU_COUNTS:
                r = results[p]
                if r is None:
                    rows.append((MODEL_LABELS[model], dataset, p,
                                 None, None, None, None, None))
                    continue
                ms = r.breakdown.as_millis()
                rows.append((MODEL_LABELS[model], dataset, p,
                             round(ms["transfer_ms"], 1),
                             round(ms["compute_ms"], 1),
                             round(ms["comm_ms"], 1),
                             round(ms["total_ms"], 1),
                             round(speedups.get(p, float("nan")), 1)))
            summary_rows.append(
                (MODEL_LABELS[model], dataset,
                 round(max(speedups.values()), 1)))

    table = render_table(
        ["model", "dataset", "P", "transfer ms", "compute ms", "comm ms",
         "total ms", "speedup"],
        rows, title="Figure 5: strong scaling (GD transfer enabled)")
    summary = render_table(["model", "dataset", "best speedup"],
                           summary_rows,
                           title="Figure 5 summary: speedup at scale")
    write_report("fig5_strong_scaling", table + "\n\n" + summary)

    best_speedup_overall = 0.0
    for model in MODEL_NAMES:
        for dataset in DATASET_NAMES:
            results = all_results[model][dataset]
            ran = {p: r for p, r in results.items() if r is not None}
            ps = sorted(ran)
            if model in ("tmgcn", "cdgcn"):
                # compute scales near-linearly: quadrupling P at least
                # ~halves compute time (EvolveGCN is excluded — its
                # weight LSTM is replicated on every rank, a constant
                # compute floor, §5.5)
                for a, b in zip(ps, ps[2:]):
                    assert ran[b].breakdown.compute < \
                        ran[a].breakdown.compute * 0.7, \
                        (model, dataset, a, b)
            else:
                # EvolveGCN: total time strictly improves with scale
                assert ran[max(ps)].total_ms < ran[min(ps)].total_ms
            times = {p: r.total_ms for p, r in ran.items()}
            speedups = speedup_series(times)
            best_speedup_overall = max(best_speedup_overall,
                                       max(speedups.values()))
            if model in ("tmgcn", "cdgcn") and 8 in ran and 16 in ran:
                # node-boundary dip: scaling efficiency drops at P=16
                eff8 = speedups[8] / 8
                eff16 = speedups[16] / 16
                assert eff16 < eff8, (model, dataset)
                # comm dominates compute at scale
                big = max(ran)
                assert ran[big].breakdown.comm > \
                    ran[big].breakdown.compute, (model, dataset)

    # paper: up to 30x on 128 GPUs
    assert best_speedup_overall > 20.0, best_speedup_overall

    # EvolveGCN scales at least as well as the communicating models
    def best_for(model):
        vals = []
        for dataset in DATASET_NAMES:
            times = {p: (r.total_ms if r else None)
                     for p, r in all_results[model][dataset].items()}
            vals.append(max(speedup_series(times).values()))
        return max(vals)

    assert best_for("egcn") >= best_for("tmgcn")
    assert best_for("egcn") >= best_for("cdgcn")
