"""Table 2 — snapshot vs hypergraph vertex partitioning (paper §6.4).

For the three models on AML-Sim at P ∈ {4, 16, 64}: the redistribution
communication volume (reported both in simulated float units and in
paper-equivalent billions of floats) and the per-epoch time under both
schemes.

Shape checks (the paper's Table 2 findings):
* snapshot partitioning's volume is essentially flat in P (fixed
  O(T·N) limit), while hypergraph volume grows with P;
* EvolveGCN under snapshot partitioning is communication-free (0);
* snapshot partitioning's per-epoch time beats hypergraph at every P
  (regular pattern, no packing/indexing overheads, GD transfer).
"""

from functools import lru_cache

from repro.bench import (bench_dtdg, calibrated_overrides, hardware_scale,
                         render_table, write_report)
from repro.cluster import Cluster
from repro.models import MODEL_NAMES, build_model
from repro.train import DistConfig, DistributedTrainer, LinkPredictionTask

RANKS = (4, 16, 64)


@lru_cache(maxsize=None)
def _run(model_name, partitioning, num_ranks):
    dtdg = bench_dtdg("amlsim", model_name)
    model = build_model(model_name, in_features=dtdg.feature_dim, seed=0)
    task = LinkPredictionTask(dtdg, embed_dim=model.embed_dim, theta=0.1,
                              seed=0)
    overrides = calibrated_overrides("amlsim", model_name,
                                     memory_headroom=2.0)
    cluster = Cluster.of_size(num_ranks, **overrides)
    # the irregular-exchange packing rate scales with the link bandwidths
    # (it is a per-byte GPU gather/scatter cost at paper scale)
    _, feature_factor = hardware_scale("amlsim", model_name)
    cfg = DistConfig(partitioning=partitioning, num_blocks=4,
                     use_graph_difference=(partitioning == "snapshot"),
                     packing_overhead_per_byte=1.5e-10 / feature_factor,
                     learning_rate=0.02, seed=0)
    trainer = DistributedTrainer(model, dtdg, task, cluster, cfg)
    return trainer.train_epoch()


def _paper_equivalent_volume(model_name, units):
    """Scale a simulated float count up to the paper's workload size."""
    _, feature_factor = hardware_scale("amlsim", model_name)
    return units / feature_factor / 1e9


def test_table2_snapshot_vs_hypergraph(benchmark):
    results = {}
    for model_name in MODEL_NAMES:
        for partitioning in ("snapshot", "vertex"):
            for p in RANKS:
                results[(model_name, partitioning, p)] = _run(
                    model_name, partitioning, p)
    benchmark.pedantic(lambda: _run.__wrapped__("tmgcn", "snapshot", 4),
                       rounds=1, iterations=1)

    rows = []
    for model_name in MODEL_NAMES:
        for p in RANKS:
            snap = results[(model_name, "snapshot", p)]
            hyper = results[(model_name, "vertex", p)]
            rows.append((
                model_name, p,
                round(_paper_equivalent_volume(
                    model_name, snap.comm_volume_units), 1),
                round(_paper_equivalent_volume(
                    model_name, hyper.comm_volume_units), 1),
                round(snap.total_ms, 0),
                round(hyper.total_ms, 0),
            ))
    table = render_table(
        ["model", "ranks", "snapshot vol (B)", "hyper vol (B)",
         "snapshot ms", "hyper ms"],
        rows,
        title="Table 2: snapshot vs hypergraph partitioning (AML-Sim; "
              "volume in paper-equivalent billions of floats)")
    write_report("table2_partition_comparison", table)

    for model_name in MODEL_NAMES:
        snap_vol = [results[(model_name, "snapshot", p)].comm_volume_units
                    for p in RANKS]
        hyper_vol = [results[(model_name, "vertex", p)].comm_volume_units
                     for p in RANKS]
        snap_ms = [results[(model_name, "snapshot", p)].total_ms
                   for p in RANKS]
        hyper_ms = [results[(model_name, "vertex", p)].total_ms
                    for p in RANKS]
        # hypergraph volume grows with P ...
        assert hyper_vol[0] < hyper_vol[1] < hyper_vol[2], model_name
        # ... snapshot volume approaches a fixed limit (within 2x across
        # a 16x rank range, vs multi-x growth for hypergraph)
        if model_name != "egcn":
            assert max(snap_vol) < 2.0 * min(v for v in snap_vol if v), \
                model_name
            hyper_growth = hyper_vol[2] / hyper_vol[0]
            snap_growth = max(snap_vol) / min(snap_vol)
            assert hyper_growth > snap_growth, model_name
        else:
            # EvolveGCN under snapshot partitioning: communication free
            assert all(v == 0 for v in snap_vol)
        # snapshot partitioning wins on time at every P (paper Table 2)
        for s_ms, h_ms, p in zip(snap_ms, hyper_ms, RANKS):
            assert s_ms < h_ms, (model_name, p)
