"""Storage tier — delta-log footprint and compacted time travel.

Encodes an AML-Sim timeline into the temporal graph store and asserts
the storage tier's two headline claims:

* the delta-log WAL is ≥ 3x smaller than naive per-snapshot storage
  (graph-difference durability: removed/added indices plus changed
  values only);
* time-traveling to the last timestep from the nearest compacted base
  is ≥ 5x faster than replaying the whole log from t=0;

plus the structural invariant that makes the store usable at all:
``materialize(t)`` equals the in-memory snapshot for every t.
"""

import os

from repro.bench import StoreWorkloadConfig, run_store_benchmark
from repro.bench.reporting import results_dir


def test_store_footprint_and_time_travel(benchmark):
    config = StoreWorkloadConfig()
    result = benchmark.pedantic(
        lambda: run_store_benchmark(config), rounds=1, iterations=1)

    # report files land in the standard results pipeline
    assert os.path.exists(os.path.join(results_dir(), "store.txt"))

    # replay is exact: the store is the timeline, not an approximation
    assert result.replay_exact

    # headline 1: the delta log beats naive per-snapshot storage ≥ 3x
    assert result.storage_ratio >= 3.0, (
        f"delta log only {result.storage_ratio:.2f}x smaller than naive "
        f"per-snapshot storage")

    # headline 2: compaction bases make time travel ≥ 5x faster than a
    # full replay from t=0
    assert result.time_travel_speedup >= 5.0, (
        f"time travel only {result.time_travel_speedup:.2f}x faster "
        f"with bases")

    # the speedup is structural, not a timing artifact: the based store
    # replays a bounded tail, the cold store replays the whole log
    assert result.based_records_replayed <= config.base_interval
    assert result.cold_records_replayed == result.num_timesteps


def test_store_bases_are_pure_acceleration():
    """Deleting every base must change nothing but replay depth."""
    import shutil
    import tempfile

    from repro.bench.store import StoreWorkloadConfig
    from repro.graph.amlsim import generate_amlsim
    from repro.store import GraphStore
    from repro.store.compact import base_dir

    config = StoreWorkloadConfig(num_accounts=400,
                                 background_per_step=500,
                                 num_timesteps=10, base_interval=3)
    dtdg = generate_amlsim(config.amlsim()).dtdg
    workdir = tempfile.mkdtemp(prefix="repro-store-")
    try:
        path = os.path.join(workdir, "s")
        GraphStore.from_dtdg(path, dtdg,
                             base_interval=config.base_interval,
                             features=False)
        shutil.rmtree(base_dir(path))
        reopened = GraphStore.open(path)
        for t in range(dtdg.num_timesteps):
            assert reopened.materialize(t, cached=False) == dtdg[t]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
