"""Table 1 — dataset statistics (paper §6.1).

Regenerates the dataset table: N, T, raw nnz, nnz after M-product
smoothing and nnz after edge-life smoothing, for the calibrated
synthetic stand-ins, next to the paper's reference values.

Shape checks: smoothing must *grow* every dataset (the paper's smoothed
graphs are 6–80x denser) and must *increase* the consecutive-snapshot
overlap (the property the graph-difference transfer feeds on).
"""

from repro.bench import (DATASET_NAMES, bench_dtdg, raw_bench_dtdg,
                         render_table, write_report)
from repro.graph.datasets import DATASETS


def _rows():
    rows = []
    for name in DATASET_NAMES:
        raw = raw_bench_dtdg(name)
        mp = bench_dtdg(name, "tmgcn")
        el = bench_dtdg(name, "egcn")
        spec = DATASETS[name]
        rows.append((name, raw.num_vertices, raw.num_timesteps,
                     raw.total_nnz, mp.total_nnz, el.total_nnz,
                     f"{raw.mean_topology_overlap():.2f}",
                     f"{mp.mean_topology_overlap():.2f}"))
        rows.append((f"  (paper)", spec.paper_vertices,
                     spec.paper_timesteps, spec.paper_nnz,
                     spec.paper_nnz_mproduct, spec.paper_nnz_edgelife,
                     "-", "-"))
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = render_table(
        ["dataset", "N", "T", "nnz", "M-product", "edge-life",
         "raw overlap", "smoothed overlap"],
        rows, title="Table 1: datasets (bench scale vs paper reference)")
    write_report("table1_datasets", table)

    for name in DATASET_NAMES:
        raw = raw_bench_dtdg(name)
        mp = bench_dtdg(name, "tmgcn")
        el = bench_dtdg(name, "egcn")
        # smoothing grows the graphs ...
        assert mp.total_nnz > raw.total_nnz, name
        assert el.total_nnz > raw.total_nnz, name
        # ... and magnifies consecutive-snapshot overlap (paper §5.4)
        assert mp.mean_topology_overlap() > raw.mean_topology_overlap()
        assert el.mean_topology_overlap() > raw.mean_topology_overlap()
        # the smoothed overlap is in the regime that yields 3-4x GD gains
        assert mp.mean_topology_overlap() > 0.85, name
